//! The lock-free **metrics registry**: named counters, gauges and
//! log-bucketed latency histograms.
//!
//! Recording is the hot path — worker threads record from inside the chunk
//! loop — so every instrument is a clone-able handle over atomics: a
//! [`Counter::add`], [`Gauge::set`] or [`Histogram::record`] is one or two
//! relaxed atomic RMWs, never a lock and never an allocation.  Only
//! *registration* (resolving a name to a handle, done once per query or per
//! engine) and *snapshotting* take the registry mutex.
//!
//! Histograms use power-of-two buckets: bucket `0` holds the value `0` and
//! bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, so 64 buckets cover the
//! full `u64` range with a fixed-size atomic array and relative error
//! bounded by 2×.  Percentiles ([`HistogramSnapshot::percentile`]) report
//! the *inclusive upper bound* of the bucket where the requested rank
//! falls — a conservative estimate that can never under-report a latency.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two histogram buckets (covers all of `u64`).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
///
/// ```
/// let registry = rdx_obs::MetricsRegistry::new();
/// let served = registry.counter("engine.served");
/// served.add(3);
/// served.add(1);
/// assert_eq!(served.get(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge (resident bytes, queue depth, …).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log-bucketed histogram of `u64` samples (latencies in ns, ratios in
/// permille, bytes — anything whose distribution matters more than its
/// exact values).
///
/// ```
/// let registry = rdx_obs::MetricsRegistry::new();
/// let h = registry.histogram("pipeline.chunk_ns");
/// for v in 1..=100 {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 100);
/// assert_eq!(snap.sum, 5050);
/// // p50 falls in the [32, 64) bucket; the reported quantile is its
/// // inclusive upper bound.
/// assert_eq!(snap.percentile(50.0), 63);
/// assert_eq!(snap.percentile(99.0), 127);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

/// The bucket index a value lands in: `0` for `0`, else `⌊log2 v⌋ + 1`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The inclusive upper bound of bucket `i` (`0` for bucket 0, else
/// `2^i - 1`; the last bucket saturates at `u64::MAX`).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.  Lock-free: two relaxed RMWs plus one on the
    /// bucket.
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.0;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| inner.buckets[i].load(Ordering::Relaxed)),
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of a [`Histogram`]'s distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow, as recorded).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The value at percentile `p` (0–100): the inclusive upper bound of
    /// the bucket containing the `⌈p/100 · count⌉`-th smallest sample.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Arithmetic mean of the recorded samples (exact, from the true sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The exact power-of-two bucket bounds as **cumulative** `(upper_bound,
    /// cumulative_count)` pairs, up to the highest non-empty bucket — the
    /// exposition form external scrapers can re-aggregate, unlike the
    /// derived p50/p90/p99.  Empty histogram ⇒ empty vec.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let Some(last) = self.buckets.iter().rposition(|&c| c > 0) else {
            return Vec::new();
        };
        let mut cumulative = 0u64;
        (0..=last)
            .map(|i| {
                cumulative += self.buckets[i];
                (bucket_upper_bound(i), cumulative)
            })
            .collect()
    }
}

/// One named instrument's frozen value, as a snapshot reports it.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// A [`Counter`] reading.
    Counter(u64),
    /// A [`Gauge`] reading.
    Gauge(i64),
    /// A [`Histogram`] distribution (boxed: a snapshot carries its full
    /// bucket array, far larger than the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The registry: names to instruments.  Registration gets-or-creates (two
/// callers asking for `"engine.served"` share one counter); recording
/// through the returned handles never touches the registry again.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    instruments: Mutex<Vec<(&'static str, Instrument)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &'static str, make: impl FnOnce() -> Instrument) -> Instrument {
        let mut instruments = self.instruments.lock().expect("metrics registry poisoned");
        if let Some((_, i)) = instruments.iter().find(|(n, _)| *n == name) {
            return i.clone();
        }
        let instrument = make();
        instruments.push((name, instrument.clone()));
        instrument
    }

    /// [`MetricsRegistry::get_or_insert`] for a name built at runtime
    /// (per-tenant labels like `engine.tenant.acme.admissions`).  The name
    /// is interned — leaked into a `'static str` — exactly once per
    /// distinct string, under the registry lock, so the snapshot type stays
    /// `(&'static str, _)` and repeated registrations of the same label
    /// never grow memory.  Interning is bounded by the label population
    /// (tenants, not queries), the same registration-time-only cost the
    /// static path pays.
    fn get_or_insert_named(&self, name: &str, make: impl FnOnce() -> Instrument) -> Instrument {
        let mut instruments = self.instruments.lock().expect("metrics registry poisoned");
        if let Some((_, i)) = instruments.iter().find(|(n, _)| *n == name) {
            return i.clone();
        }
        let interned: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let instrument = make();
        instruments.push((interned, instrument.clone()));
        instrument
    }

    /// The counter registered under `name` (created on first use).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different instrument
    /// kind.
    pub fn counter(&self, name: &'static str) -> Counter {
        match self.get_or_insert(name, || Instrument::Counter(Counter::default())) {
            Instrument::Counter(c) => c,
            other => panic!("{name} already registered as {other:?}"),
        }
    }

    /// The gauge registered under `name` (created on first use).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different instrument
    /// kind.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match self.get_or_insert(name, || Instrument::Gauge(Gauge::default())) {
            Instrument::Gauge(g) => g,
            other => panic!("{name} already registered as {other:?}"),
        }
    }

    /// The histogram registered under `name` (created on first use).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different instrument
    /// kind.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match self.get_or_insert(name, || Instrument::Histogram(Histogram::default())) {
            Instrument::Histogram(h) => h,
            other => panic!("{name} already registered as {other:?}"),
        }
    }

    /// The counter registered under a runtime-built `name` (created on
    /// first use; the name is interned once per distinct string) — how
    /// per-tenant instruments like `engine.tenant.<name>.admissions` are
    /// registered without widening the snapshot type.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different instrument
    /// kind.
    pub fn counter_named(&self, name: &str) -> Counter {
        match self.get_or_insert_named(name, || Instrument::Counter(Counter::default())) {
            Instrument::Counter(c) => c,
            other => panic!("{name} already registered as {other:?}"),
        }
    }

    /// The gauge registered under a runtime-built `name` (created on first
    /// use; the name is interned once per distinct string).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different instrument
    /// kind.
    pub fn gauge_named(&self, name: &str) -> Gauge {
        match self.get_or_insert_named(name, || Instrument::Gauge(Gauge::default())) {
            Instrument::Gauge(g) => g,
            other => panic!("{name} already registered as {other:?}"),
        }
    }

    /// The histogram registered under a runtime-built `name` (created on
    /// first use; the name is interned once per distinct string).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different instrument
    /// kind.
    pub fn histogram_named(&self, name: &str) -> Histogram {
        match self.get_or_insert_named(name, || Instrument::Histogram(Histogram::default())) {
            Instrument::Histogram(h) => h,
            other => panic!("{name} already registered as {other:?}"),
        }
    }

    /// A point-in-time copy of every registered instrument, in registration
    /// order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let instruments = self.instruments.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            metrics: instruments
                .iter()
                .map(|(name, i)| {
                    let value = match i {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                        Instrument::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                    };
                    (*name, value)
                })
                .collect(),
        }
    }
}

/// A frozen copy of a whole [`MetricsRegistry`], with text / JSON /
/// Prometheus exporters.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in registration order.
    pub metrics: Vec<(&'static str, MetricValue)>,
}

impl MetricsSnapshot {
    /// The value registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// The counter value under `name` (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value under `name` (`None` if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram under `name` (`None` if absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// A human-readable table, one instrument per line.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name:<44} counter {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name:<44} gauge   {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name:<44} hist    count={} mean={:.1} p50<={} p90<={} p99<={}",
                        h.count,
                        h.mean(),
                        h.percentile(50.0),
                        h.percentile(90.0),
                        h.percentile(99.0),
                    );
                }
            }
        }
        out
    }

    /// A JSON object string (hand-rolled — names are static identifiers, so
    /// no escaping is needed).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"metrics\":[");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{name}\",\"type\":\"counter\",\"value\":{v}}}"
                    );
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{name}\",\"type\":\"gauge\",\"value\":{v}}}"
                    );
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{name}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                        h.count,
                        h.sum,
                        h.percentile(50.0),
                        h.percentile(90.0),
                        h.percentile(99.0),
                    );
                    for (j, (le, cumulative)) in h.cumulative_buckets().into_iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{{\"le\":{le},\"count\":{cumulative}}}");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// A Prometheus text-exposition string: counters and gauges as-is,
    /// histograms as native `histogram` metrics with **cumulative `le`
    /// buckets** at the exact power-of-two bounds (inclusive upper bounds,
    /// matching Prometheus `le` semantics), capped by the mandatory
    /// `le="+Inf"` bucket.  Metric names have `.` replaced by `_` and an
    /// `rdx_` prefix.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mangle = |name: &str| format!("rdx_{}", name.replace('.', "_"));
        let mut out = String::new();
        for (name, value) in &self.metrics {
            let m = mangle(name);
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {m} counter\n{m} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {m} gauge\n{m} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {m} histogram");
                    for (le, cumulative) in h.cumulative_buckets() {
                        // The saturated top bucket is covered by +Inf below.
                        if le == u64::MAX {
                            continue;
                        }
                        let _ = writeln!(out, "{m}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count);
                    let _ = writeln!(out, "{m}_sum {}\n{m}_count {}", h.sum, h.count);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_floor_log2_plus_one() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every bucket's upper bound lands in its own bucket.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn percentiles_report_the_containing_bucket_upper_bound() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        // Cumulative counts: [0,1], [2,3]→3, [4,7]→7, [8,15]→15,
        // [16,31]→31, [32,63]→63, [64,127]→100.
        assert_eq!(s.percentile(50.0), 63);
        assert_eq!(s.percentile(63.0), 63);
        assert_eq!(s.percentile(64.0), 127);
        assert_eq!(s.percentile(90.0), 127);
        assert_eq!(s.percentile(99.0), 127);
        assert_eq!(s.percentile(1.0), 1);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero_histograms() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().percentile(50.0), 0);
        assert_eq!(h.snapshot().mean(), 0.0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.percentile(99.0), 0);
    }

    #[test]
    fn registry_shares_instruments_by_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("x").get(), 3);
        let g = registry.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(registry.gauge("depth").get(), 3);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("x"), Some(3));
        assert_eq!(snap.gauge("depth"), Some(3));
        assert!(snap.get("missing").is_none());
    }

    #[test]
    fn named_registration_interns_once_and_shares_with_static_names() {
        let registry = MetricsRegistry::new();
        // A runtime-built name registers, dedupes against itself, and shows
        // up in snapshots like any static name.
        let tenant = "acme";
        let a = registry.counter_named(&format!("engine.tenant.{tenant}.admissions"));
        let b = registry.counter_named(&format!("engine.tenant.{tenant}.admissions"));
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine.tenant.acme.admissions"), Some(5));
        // Static and named registration of the same string share one
        // instrument.
        registry.counter("engine.shared").add(1);
        registry.counter_named("engine.shared").add(2);
        assert_eq!(registry.snapshot().counter("engine.shared"), Some(3));
        // Gauges and histograms take the same path.
        registry.gauge_named("engine.tenant.acme.in_flight").set(2);
        registry
            .histogram_named("engine.tenant.acme.wait_ns")
            .record(64);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("engine.tenant.acme.in_flight"), Some(2));
        assert_eq!(
            snap.histogram("engine.tenant.acme.wait_ns").unwrap().count,
            1
        );
        // Exporters render interned names unchanged.
        assert!(snap
            .to_prometheus()
            .contains("rdx_engine_tenant_acme_in_flight 2"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn named_kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter_named("engine.tenant.x.admissions");
        registry.gauge_named("engine.tenant.x.admissions");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn exporters_render_all_three_kinds() {
        let registry = MetricsRegistry::new();
        registry.counter("engine.served").add(7);
        registry.gauge("engine.in_flight").set(2);
        let h = registry.histogram("pipeline.chunk_ns");
        h.record(100);
        h.record(1000);
        let snap = registry.snapshot();

        let text = snap.to_text();
        assert!(text.contains("engine.served"));
        assert!(text.contains("counter 7"));
        assert!(text.contains("p50<="));

        let json = snap.to_json();
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.contains("\"name\":\"engine.served\",\"type\":\"counter\",\"value\":7"));
        assert!(json.contains("\"type\":\"histogram\",\"count\":2,\"sum\":1100"));
        // 100 lands in [64,127], 1000 in [512,1023]: the bucket array is
        // cumulative and ends at the highest non-empty bound.
        assert!(json.contains("{\"le\":127,\"count\":1}"));
        assert!(json.contains("{\"le\":1023,\"count\":2}]"));

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE rdx_engine_served counter"));
        assert!(prom.contains("rdx_engine_served 7"));
        assert!(prom.contains("# TYPE rdx_pipeline_chunk_ns histogram"));
        assert!(prom.contains("rdx_pipeline_chunk_ns_bucket{le=\"127\"} 1"));
        assert!(prom.contains("rdx_pipeline_chunk_ns_bucket{le=\"1023\"} 2"));
        assert!(prom.contains("rdx_pipeline_chunk_ns_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("rdx_pipeline_chunk_ns_count 2"));
    }

    #[test]
    fn cumulative_buckets_are_exact_and_reaggregatable() {
        let h = Histogram::default();
        assert!(h.snapshot().cumulative_buckets().is_empty());
        h.record(0);
        h.record(1);
        h.record(5);
        h.record(5);
        let buckets = h.snapshot().cumulative_buckets();
        // 0 → bucket 0 (le=0); 1 → bucket 1 (le=1); 5,5 → bucket 3 (le=7).
        assert_eq!(buckets, vec![(0, 1), (1, 2), (3, 2), (7, 4)]);
        // Cumulative counts are monotone and end at the total count.
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(buckets.last().unwrap().1, 4);

        // The saturated top bucket defers to +Inf in the Prometheus form.
        let registry = MetricsRegistry::new();
        let big = registry.histogram("big");
        big.record(u64::MAX);
        let prom = registry.snapshot().to_prometheus();
        assert!(!prom.contains(&format!("le=\"{}\"", u64::MAX)));
        assert!(prom.contains("rdx_big_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("c");
        let h = registry.histogram("h");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (c, h) = (c.clone(), h.clone());
                scope.spawn(move || {
                    for v in 0..1000u64 {
                        c.inc();
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.snapshot().count, 4000);
    }
}
