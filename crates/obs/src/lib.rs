//! # rdx-obs — metrics and structured tracing for the radix-decluster stack
//!
//! A zero-dependency observability layer: a lock-free [`MetricsRegistry`]
//! (counters, gauges, power-of-two latency histograms with p50/p90/p99),
//! a bounded [`EventTrace`] of per-query lifecycle spans, and text / JSON /
//! Prometheus exporters.  The serving engine, the streaming pipeline and
//! the `rdx-api` front door all record through one shared [`Obs`] handle,
//! so a single snapshot can replay a query's whole life — submit →
//! admit → cache lookup → chunk steps (observed vs predicted cost) → done.
//!
//! ## The `Obs` handle
//!
//! [`Obs`] is the thing threaded through the stack.  It is either
//! *disabled* — a `None`, so every record call is one branch and the hot
//! chunk loop stays allocation-free and observation-free — or *enabled*,
//! an `Arc` over a registry + trace that clones cheaply into every layer:
//!
//! ```
//! use rdx_obs::{EventKind, Obs, ObsConfig, QueryId};
//!
//! let obs = Obs::enabled(ObsConfig::default());
//! let query = QueryId::next();
//! obs.record(query, EventKind::Submit);
//! obs.record(query, EventKind::CacheLookup { hit: false });
//! obs.record(query, EventKind::Done { rows: 42, wall_ns: 1_000 });
//!
//! let trace = obs.trace_snapshot().unwrap();
//! let life: Vec<_> = trace.events_for(query).iter().map(|e| e.kind.label()).collect();
//! assert_eq!(life, ["submit", "cache_lookup", "done"]);
//!
//! // Disabled is free: no storage, records are discarded on one branch.
//! let off = Obs::disabled();
//! off.record(query, EventKind::Submit);
//! assert!(off.trace_snapshot().is_none());
//! ```
//!
//! ## Metrics
//!
//! Instruments are clone-able handles over atomics — resolve them once
//! (per engine or per query), record from any thread without locks:
//!
//! ```
//! use rdx_obs::{Obs, ObsConfig};
//!
//! let obs = Obs::enabled(ObsConfig::default());
//! let metrics = obs.metrics().unwrap();
//! let latency = metrics.histogram("pipeline.chunk_ns");
//! for ns in [800u64, 950, 1200, 40_000] {
//!     latency.record(ns);
//! }
//! let snap = metrics.snapshot();
//! let h = snap.histogram("pipeline.chunk_ns").unwrap();
//! assert_eq!(h.count, 4);
//! assert!(h.percentile(50.0) < h.percentile(99.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod profile;
mod trace;

pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue,
    MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use profile::{MissCounts, Phase, Profile};
pub use trace::{EventKind, EventTrace, QueryId, TraceEvent, TraceSnapshot};

use std::sync::Arc;
use std::time::Instant;

/// Configuration of an enabled [`Obs`] handle.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Maximum events the trace ring retains (oldest overwritten beyond
    /// this).  Pre-allocated up front.
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        // 4096 events ≈ hundreds of queries' lifecycles at typical chunk
        // counts; ~160 KiB of pre-allocated ring.
        ObsConfig {
            trace_capacity: 4096,
        }
    }
}

#[derive(Debug)]
struct ObsInner {
    metrics: MetricsRegistry,
    trace: EventTrace,
    epoch: Instant,
}

/// The shared observability handle threaded through engine, pipeline and
/// session.  Clones are cheap (`Option<Arc>`); a disabled handle stores
/// nothing and records nothing.
#[derive(Debug, Clone, Default)]
pub struct Obs(Option<Arc<ObsInner>>);

impl Obs {
    /// A disabled handle: every record is a no-op behind one branch.
    pub fn disabled() -> Self {
        Obs(None)
    }

    /// An enabled handle with its own registry and trace ring.
    pub fn enabled(config: ObsConfig) -> Self {
        Obs(Some(Arc::new(ObsInner {
            metrics: MetricsRegistry::new(),
            trace: EventTrace::new(config.trace_capacity),
            epoch: Instant::now(),
        })))
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since this handle was created (0 when disabled).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Records one trace event for `query` (no-op when disabled).
    #[inline]
    pub fn record(&self, query: QueryId, kind: EventKind) {
        if let Some(inner) = &self.0 {
            inner
                .trace
                .record(inner.epoch.elapsed().as_nanos() as u64, query, kind);
        }
    }

    /// The metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.0.as_deref().map(|inner| &inner.metrics)
    }

    /// A point-in-time copy of the registry, when enabled.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.0.as_deref().map(|inner| inner.metrics.snapshot())
    }

    /// A point-in-time copy of the event trace, when enabled.
    pub fn trace_snapshot(&self) -> Option<TraceSnapshot> {
        self.0.as_deref().map(|inner| inner.trace.snapshot())
    }

    /// Pre-resolved [`Profile`] instruments for cache-truth accounting,
    /// when enabled (see the [`profile`](crate::Profile) subsystem).
    pub fn profile(&self) -> Option<Profile> {
        self.0
            .as_deref()
            .map(|inner| Profile::resolve(&inner.metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert_eq!(obs.now_ns(), 0);
        obs.record(QueryId::next(), EventKind::Submit);
        assert!(obs.metrics().is_none());
        assert!(obs.metrics_snapshot().is_none());
        assert!(obs.trace_snapshot().is_none());
        // Clones of a disabled handle stay disabled.
        assert!(!obs.clone().is_enabled());
    }

    #[test]
    fn enabled_clones_share_one_registry_and_trace() {
        let obs = Obs::enabled(ObsConfig { trace_capacity: 16 });
        let clone = obs.clone();
        let q = QueryId::next();
        obs.record(q, EventKind::Submit);
        clone.record(
            q,
            EventKind::Done {
                rows: 1,
                wall_ns: 5,
            },
        );
        clone.metrics().unwrap().counter("c").inc();

        let trace = obs.trace_snapshot().unwrap();
        assert_eq!(trace.events_for(q).len(), 2);
        assert_eq!(obs.metrics_snapshot().unwrap().counter("c"), Some(1));
        // Timestamps are monotone in record order.
        let events = trace.events_for(q);
        assert!(events[0].at_ns <= events[1].at_ns);
    }
}
