//! The bounded **structured event trace**: a ring buffer of per-query
//! lifecycle spans, keyed by a process-unique [`QueryId`] so one query's
//! life can be replayed across layers (front door → admission → cache →
//! chunk loop → completion) from a single snapshot.
//!
//! Events are fixed-size [`Copy`] values and the ring is pre-allocated at
//! construction, so recording in the steady-state chunk loop performs **no
//! heap allocations** — it takes a short mutex (recording happens at chunk
//! granularity, not per tuple) and writes one slot.  When the ring is full
//! the oldest events are overwritten; [`TraceSnapshot::dropped`] reports
//! how many were lost so a replay can tell "the query emitted no events"
//! from "the events aged out".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Process-wide query-id counter: ids are unique across every engine and
/// session in the process, so traces from different sessions can be merged
/// without aliasing.
static NEXT_QUERY_ID: AtomicU64 = AtomicU64::new(1);

/// A process-unique query identifier — the key every trace event carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl QueryId {
    /// Mints a fresh process-unique id.
    pub fn next() -> Self {
        QueryId(NEXT_QUERY_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw id.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q#{}", self.0)
    }
}

/// One structured span in a query's life.  All variants are `Copy` (reject
/// reasons are static strings) so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The query entered the system (ticket submission or direct
    /// `run`/`stream`).
    Submit,
    /// The query was attributed to a tenant — recorded right after
    /// [`EventKind::Submit`] when the request carried one, so a trace
    /// consumer can group every later event of this query under its
    /// principal.
    Tenant {
        /// The serving layer's interned numeric tenant id.
        tenant: u32,
    },
    /// Admission granted a share of the global budget after
    /// `queue_wait_ns` in the FIFO queue (0 for direct runs, which skip
    /// the queue).
    Admit {
        /// Granted budget share in bytes (`usize::MAX` when unbounded).
        share_bytes: usize,
        /// Time spent queued before admission, in nanoseconds.
        queue_wait_ns: u64,
    },
    /// The query was refused (validation, admission or budget failure).
    Reject {
        /// A static label naming the error kind.
        reason: &'static str,
    },
    /// The clustered-join-index cache was consulted for the prepared
    /// prefix.
    CacheLookup {
        /// `true` when the prefix was served from the cache.
        hit: bool,
    },
    /// One streaming chunk was emitted by the pipeline.
    ChunkStep {
        /// Zero-based chunk index within this query.
        chunk: u32,
        /// Result rows in this chunk.
        rows: u32,
        /// Observed wall-clock of the chunk, in nanoseconds.
        observed_ns: u64,
        /// The cost model's per-chunk prediction, in nanoseconds (0 when
        /// no prediction was attached).
        predicted_ns: u64,
        /// The chunk's measured working set, in bytes.
        working_set_bytes: u64,
    },
    /// Simulated cache truth for one streaming chunk, recorded right after
    /// its [`EventKind::ChunkStep`] when the profiled pipeline mode is on:
    /// the chunk's accesses were replayed through the traced kernels and
    /// these are the resulting miss counts (deterministic — a pure function
    /// of the access pattern, independent of wall-clock).
    ChunkProfile {
        /// Zero-based chunk index within this query (matches the adjacent
        /// `ChunkStep`).
        chunk: u32,
        /// Memory accesses issued by the replayed chunk.
        accesses: u64,
        /// Simulated L1 data-cache misses.
        l1_misses: u64,
        /// Simulated L2 cache misses.
        l2_misses: u64,
        /// Simulated TLB misses.
        tlb_misses: u64,
        /// Modeled stall cycles under the profiling cache parameters.
        stall_cycles: u64,
    },
    /// The adaptive controller re-planned the remaining rows mid-query:
    /// the chunk count covering the un-emitted tail changed from
    /// `old_chunks` to `new_chunks`.
    Replan {
        /// Chunks the old plan needed for the remaining rows.
        old_chunks: u32,
        /// Chunks the new plan needs for the same rows.
        new_chunks: u32,
        /// Why the controller fired (`"slow"`, `"fast"` or `"rebudget"`).
        reason: &'static str,
    },
    /// The query's consumed service time passed its deadline: the engine
    /// tore it down at the next chunk boundary (an adjacent
    /// [`EventKind::Cancel`] with reason `"deadline"` records the
    /// teardown itself).
    DeadlineMiss {
        /// The deadline the request carried, in nanoseconds.
        deadline_ns: u64,
        /// Service time consumed when the engine enforced it.
        consumed_ns: u64,
    },
    /// An in-flight (or queued) query was torn down before completion and
    /// its budget grant reclaimed.
    Cancel {
        /// Why: `"user"` (caller cancellation), `"deadline"` (timeout
        /// enforcement) or `"worker_panic"` (a morsel worker crashed while
        /// running one of this query's chunks).
        reason: &'static str,
    },
    /// The query completed and its outcome was parked/returned.
    Done {
        /// Total result rows.
        rows: u64,
        /// Admission-to-completion wall clock, in nanoseconds.
        wall_ns: u64,
    },
}

impl EventKind {
    /// A short static label for the variant (used by the text exporter and
    /// handy for grouping).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Submit => "submit",
            EventKind::Tenant { .. } => "tenant",
            EventKind::Admit { .. } => "admit",
            EventKind::Reject { .. } => "reject",
            EventKind::CacheLookup { .. } => "cache_lookup",
            EventKind::ChunkStep { .. } => "chunk_step",
            EventKind::ChunkProfile { .. } => "chunk_profile",
            EventKind::Replan { .. } => "replan",
            EventKind::DeadlineMiss { .. } => "deadline_miss",
            EventKind::Cancel { .. } => "cancel",
            EventKind::Done { .. } => "done",
        }
    }
}

/// One recorded event: which query, when (relative to the trace's epoch),
/// and what happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Global sequence number (gapless; survives ring overwrites, so
    /// ordering across queries is always reconstructable).
    pub seq: u64,
    /// Nanoseconds since the owning trace was created.
    pub at_ns: u64,
    /// The query this event belongs to.
    pub query: QueryId,
    /// What happened.
    pub kind: EventKind,
}

struct Ring {
    /// Pre-allocated at construction; once `len == capacity`, slot
    /// `seq % capacity` is overwritten in place.
    events: Vec<TraceEvent>,
    next_seq: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s.
pub struct EventTrace {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for EventTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventTrace")
            .field("capacity", &self.capacity)
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl EventTrace {
    /// A trace retaining at most `capacity` events (the storage is
    /// allocated up front; recording never allocates).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be at least 1");
        EventTrace {
            capacity,
            ring: Mutex::new(Ring {
                events: Vec::with_capacity(capacity),
                next_seq: 0,
            }),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event for `query` at time-offset `at_ns`, overwriting
    /// the oldest event when full.
    pub fn record(&self, at_ns: u64, query: QueryId, kind: EventKind) {
        let mut ring = self.ring.lock().expect("event trace poisoned");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let event = TraceEvent {
            seq,
            at_ns,
            query,
            kind,
        };
        if ring.events.len() < self.capacity {
            ring.events.push(event);
        } else {
            let slot = (seq % self.capacity as u64) as usize;
            ring.events[slot] = event;
        }
    }

    /// Events recorded since creation (including any since overwritten).
    pub fn recorded(&self) -> u64 {
        self.ring.lock().expect("event trace poisoned").next_seq
    }

    /// A point-in-time copy of the retained events, oldest first.
    pub fn snapshot(&self) -> TraceSnapshot {
        let ring = self.ring.lock().expect("event trace poisoned");
        let mut events = ring.events.clone();
        events.sort_by_key(|e| e.seq);
        TraceSnapshot {
            dropped: ring.next_seq - events.len() as u64,
            events,
        }
    }
}

/// A frozen, ordered copy of an [`EventTrace`].
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Retained events, ordered by sequence number (oldest first).
    pub events: Vec<TraceEvent>,
    /// Events recorded but no longer retained (ring overwrites).
    pub dropped: u64,
}

impl TraceSnapshot {
    /// The retained events of one query, in order — a query's replayable
    /// lifecycle.
    pub fn events_for(&self, query: QueryId) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.query == query)
            .copied()
            .collect()
    }

    /// Distinct query ids present, in first-appearance order.
    pub fn queries(&self) -> Vec<QueryId> {
        let mut seen = Vec::new();
        for e in &self.events {
            if !seen.contains(&e.query) {
                seen.push(e.query);
            }
        }
        seen
    }

    /// A human-readable rendering, one event per line.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "({} older events dropped)", self.dropped);
        }
        for e in &self.events {
            let _ = write!(out, "[{:>12.3}ms] {:>6} ", e.at_ns as f64 / 1e6, e.query);
            let _ = match e.kind {
                EventKind::Submit => writeln!(out, "submit"),
                EventKind::Tenant { tenant } => writeln!(out, "tenant  #{tenant}"),
                EventKind::Admit {
                    share_bytes,
                    queue_wait_ns,
                } => writeln!(
                    out,
                    "admit   share={share_bytes}B wait={:.3}ms",
                    queue_wait_ns as f64 / 1e6
                ),
                EventKind::Reject { reason } => writeln!(out, "reject  {reason}"),
                EventKind::CacheLookup { hit } => writeln!(
                    out,
                    "cache   {}",
                    if hit { "hit" } else { "miss" }
                ),
                EventKind::ChunkStep {
                    chunk,
                    rows,
                    observed_ns,
                    predicted_ns,
                    working_set_bytes,
                } => writeln!(
                    out,
                    "chunk   #{chunk} rows={rows} observed={observed_ns}ns predicted={predicted_ns}ns ws={working_set_bytes}B"
                ),
                EventKind::ChunkProfile {
                    chunk,
                    accesses,
                    l1_misses,
                    l2_misses,
                    tlb_misses,
                    stall_cycles,
                } => writeln!(
                    out,
                    "profile #{chunk} accesses={accesses} l1={l1_misses} l2={l2_misses} tlb={tlb_misses} stall={stall_cycles}cy"
                ),
                EventKind::Replan {
                    old_chunks,
                    new_chunks,
                    reason,
                } => writeln!(out, "replan  {reason} chunks {old_chunks}->{new_chunks}"),
                EventKind::DeadlineMiss {
                    deadline_ns,
                    consumed_ns,
                } => writeln!(
                    out,
                    "miss    deadline={deadline_ns}ns consumed={consumed_ns}ns"
                ),
                EventKind::Cancel { reason } => writeln!(out, "cancel  {reason}"),
                EventKind::Done { rows, wall_ns } => writeln!(
                    out,
                    "done    rows={rows} wall={:.3}ms",
                    wall_ns as f64 / 1e6
                ),
            };
        }
        out
    }

    /// A JSON array-of-objects string (hand-rolled; all payloads are
    /// numeric or static strings, so no escaping is needed).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"dropped\":");
        let _ = write!(out, "{}", self.dropped);
        out.push_str(",\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"at_ns\":{},\"query\":{},\"kind\":\"{}\"",
                e.seq,
                e.at_ns,
                e.query.raw(),
                e.kind.label()
            );
            let _ = match e.kind {
                EventKind::Submit => Ok(()),
                EventKind::Tenant { tenant } => write!(out, ",\"tenant\":{tenant}"),
                EventKind::Admit {
                    share_bytes,
                    queue_wait_ns,
                } => write!(
                    out,
                    ",\"share_bytes\":{share_bytes},\"queue_wait_ns\":{queue_wait_ns}"
                ),
                EventKind::Reject { reason } => write!(out, ",\"reason\":\"{reason}\""),
                EventKind::CacheLookup { hit } => write!(out, ",\"hit\":{hit}"),
                EventKind::ChunkStep {
                    chunk,
                    rows,
                    observed_ns,
                    predicted_ns,
                    working_set_bytes,
                } => write!(
                    out,
                    ",\"chunk\":{chunk},\"rows\":{rows},\"observed_ns\":{observed_ns},\"predicted_ns\":{predicted_ns},\"working_set_bytes\":{working_set_bytes}"
                ),
                EventKind::ChunkProfile {
                    chunk,
                    accesses,
                    l1_misses,
                    l2_misses,
                    tlb_misses,
                    stall_cycles,
                } => write!(
                    out,
                    ",\"chunk\":{chunk},\"accesses\":{accesses},\"l1_misses\":{l1_misses},\"l2_misses\":{l2_misses},\"tlb_misses\":{tlb_misses},\"stall_cycles\":{stall_cycles}"
                ),
                EventKind::Replan {
                    old_chunks,
                    new_chunks,
                    reason,
                } => write!(
                    out,
                    ",\"old_chunks\":{old_chunks},\"new_chunks\":{new_chunks},\"reason\":\"{reason}\""
                ),
                EventKind::DeadlineMiss {
                    deadline_ns,
                    consumed_ns,
                } => write!(
                    out,
                    ",\"deadline_ns\":{deadline_ns},\"consumed_ns\":{consumed_ns}"
                ),
                EventKind::Cancel { reason } => write!(out, ",\"reason\":\"{reason}\""),
                EventKind::Done { rows, wall_ns } => {
                    write!(out, ",\"rows\":{rows},\"wall_ns\":{wall_ns}")
                }
            };
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_ids_are_unique_and_ordered() {
        let a = QueryId::next();
        let b = QueryId::next();
        assert!(b.raw() > a.raw());
        assert_eq!(format!("{a}"), format!("q#{}", a.raw()));
    }

    #[test]
    fn ring_retains_the_newest_events_and_counts_drops() {
        let trace = EventTrace::new(4);
        let q = QueryId::next();
        for i in 0..10u64 {
            trace.record(i, q, EventKind::Submit);
        }
        let snap = trace.snapshot();
        assert_eq!(trace.recorded(), 10);
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        // The newest four, in order.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(snap.events[0].at_ns, 6);
    }

    #[test]
    fn events_for_replays_one_query_in_order() {
        let trace = EventTrace::new(64);
        let (a, b) = (QueryId::next(), QueryId::next());
        trace.record(0, a, EventKind::Submit);
        trace.record(
            1,
            b,
            EventKind::Reject {
                reason: "unknown_relation",
            },
        );
        trace.record(
            2,
            a,
            EventKind::Admit {
                share_bytes: 1024,
                queue_wait_ns: 500,
            },
        );
        trace.record(3, a, EventKind::CacheLookup { hit: false });
        trace.record(
            4,
            a,
            EventKind::ChunkStep {
                chunk: 0,
                rows: 128,
                observed_ns: 9000,
                predicted_ns: 8000,
                working_set_bytes: 2048,
            },
        );
        trace.record(
            5,
            a,
            EventKind::ChunkProfile {
                chunk: 0,
                accesses: 4096,
                l1_misses: 300,
                l2_misses: 40,
                tlb_misses: 12,
                stall_cycles: 9500,
            },
        );
        trace.record(
            6,
            a,
            EventKind::Done {
                rows: 128,
                wall_ns: 12_000,
            },
        );
        let snap = trace.snapshot();
        assert_eq!(snap.queries(), vec![a, b]);
        let life: Vec<&'static str> = snap.events_for(a).iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            life,
            vec![
                "submit",
                "admit",
                "cache_lookup",
                "chunk_step",
                "chunk_profile",
                "done"
            ]
        );
        assert_eq!(snap.events_for(b).len(), 1);

        let text = snap.to_text();
        assert!(text.contains("submit"));
        assert!(text.contains("share=1024B"));
        assert!(text.contains("reject  unknown_relation"));
        assert!(text.contains("chunk   #0 rows=128"));
        assert!(text.contains("profile #0 accesses=4096 l1=300 l2=40 tlb=12 stall=9500cy"));

        let json = snap.to_json();
        assert!(json.starts_with("{\"dropped\":0,\"events\":["));
        assert!(json.contains("\"kind\":\"chunk_step\",\"chunk\":0,\"rows\":128"));
        assert!(json.contains(
            "\"kind\":\"chunk_profile\",\"chunk\":0,\"accesses\":4096,\"l1_misses\":300,\"l2_misses\":40,\"tlb_misses\":12,\"stall_cycles\":9500"
        ));
        assert!(json.contains("\"kind\":\"done\",\"rows\":128,\"wall_ns\":12000"));
    }

    #[test]
    fn robustness_events_label_and_export() {
        let trace = EventTrace::new(16);
        let q = QueryId::next();
        trace.record(
            0,
            q,
            EventKind::DeadlineMiss {
                deadline_ns: 1_000,
                consumed_ns: 2_500,
            },
        );
        trace.record(1, q, EventKind::Cancel { reason: "deadline" });
        trace.record(2, q, EventKind::Cancel { reason: "user" });
        trace.record(
            3,
            q,
            EventKind::Cancel {
                reason: "worker_panic",
            },
        );
        let snap = trace.snapshot();
        let labels: Vec<&'static str> = snap.events_for(q).iter().map(|e| e.kind.label()).collect();
        assert_eq!(labels, vec!["deadline_miss", "cancel", "cancel", "cancel"]);
        let text = snap.to_text();
        assert!(text.contains("miss    deadline=1000ns consumed=2500ns"));
        assert!(text.contains("cancel  user"));
        assert!(text.contains("cancel  worker_panic"));
        let json = snap.to_json();
        assert!(
            json.contains("\"kind\":\"deadline_miss\",\"deadline_ns\":1000,\"consumed_ns\":2500")
        );
        assert!(json.contains("\"kind\":\"cancel\",\"reason\":\"deadline\""));
    }
}
