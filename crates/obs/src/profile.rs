//! The **Profile** subsystem: cache-truth accounting for profiled runs.
//!
//! When a pipeline runs in profiled mode it replays every chunk's memory
//! accesses through the traced kernels and learns *simulated* cache/TLB
//! miss counts — deterministic numbers that survive any container, unlike
//! wall-clock.  This module gives those numbers a first-class home in the
//! observability layer:
//!
//! * per-phase **span accounting** (cluster / fetch / decluster wall-clock
//!   histograms), and
//! * per-chunk **[`MissCounts`]** recorded as histograms plus running
//!   counters, carried on [`EventKind::ChunkProfile`] trace events adjacent
//!   to each `ChunkStep`.
//!
//! Like every other instrument here, a [`Profile`] is a bundle of
//! pre-resolved clone-able handles: resolving touches the registry mutex
//! once, recording is lock-free and allocation-free.  `rdx-obs` stays
//! zero-dependency — the cache simulator's `EventCounts` converts into the
//! plain [`MissCounts`] at the recording site.
//!
//! ```
//! use rdx_obs::{MissCounts, Obs, ObsConfig, Phase, QueryId};
//!
//! let obs = Obs::enabled(ObsConfig::default());
//! let profile = obs.profile().unwrap();
//! let query = QueryId::next();
//!
//! profile.record_span(Phase::Cluster, 12_000);
//! profile.record_chunk(
//!     &obs,
//!     query,
//!     0,
//!     MissCounts { accesses: 4096, l1_misses: 300, l2_misses: 40, tlb_misses: 12, stall_cycles: 9500 },
//! );
//!
//! let snap = obs.metrics_snapshot().unwrap();
//! assert_eq!(snap.counter("profile.l2_misses"), Some(40));
//! assert_eq!(snap.histogram("profile.chunk.l1_misses").unwrap().count, 1);
//! let trace = obs.trace_snapshot().unwrap();
//! assert_eq!(trace.events_for(query)[0].kind.label(), "chunk_profile");
//! ```

use crate::{Counter, EventKind, Histogram, MetricsRegistry, QueryId};

/// The pipeline phases the profiler accounts spans to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Radix-clustering the join index (prepare-time, shared prefix).
    Cluster,
    /// Positional fetches of payload columns (both sides).
    Fetch,
    /// Radix-declustering staged values back to output order.
    Decluster,
}

impl Phase {
    /// A short static label (`cluster` / `fetch` / `decluster`).
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Cluster => "cluster",
            Phase::Fetch => "fetch",
            Phase::Decluster => "decluster",
        }
    }
}

/// Simulated cache truth for one unit of work — plain counts, so this crate
/// needs no dependency on the cache simulator.  A pure function of the
/// replayed access pattern: identical inputs give identical counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissCounts {
    /// Memory accesses issued.
    pub accesses: u64,
    /// Simulated L1 data-cache misses.
    pub l1_misses: u64,
    /// Simulated L2 cache misses.
    pub l2_misses: u64,
    /// Simulated TLB misses.
    pub tlb_misses: u64,
    /// Modeled stall cycles under the profiling cache parameters.
    pub stall_cycles: u64,
}

impl MissCounts {
    /// Folds `other` into `self`.
    pub fn accumulate(&mut self, other: MissCounts) {
        self.accesses += other.accesses;
        self.l1_misses += other.l1_misses;
        self.l2_misses += other.l2_misses;
        self.tlb_misses += other.tlb_misses;
        self.stall_cycles += other.stall_cycles;
    }
}

/// Pre-resolved instrument handles for profiled runs: three per-phase span
/// histograms, per-chunk miss-count histograms and running totals.
/// Resolve once per query via [`crate::Obs::profile`]; clones share the
/// same instruments.
#[derive(Debug, Clone)]
pub struct Profile {
    cluster_ns: Histogram,
    fetch_ns: Histogram,
    decluster_ns: Histogram,
    chunk_accesses: Histogram,
    chunk_l1: Histogram,
    chunk_l2: Histogram,
    chunk_tlb: Histogram,
    chunk_stall: Histogram,
    total_accesses: Counter,
    total_l1: Counter,
    total_l2: Counter,
    total_tlb: Counter,
    total_stall: Counter,
}

impl Profile {
    /// Resolves the profile instruments in `metrics` (created on first
    /// use, shared thereafter).
    pub fn resolve(metrics: &MetricsRegistry) -> Self {
        Profile {
            cluster_ns: metrics.histogram("profile.phase.cluster_ns"),
            fetch_ns: metrics.histogram("profile.phase.fetch_ns"),
            decluster_ns: metrics.histogram("profile.phase.decluster_ns"),
            chunk_accesses: metrics.histogram("profile.chunk.accesses"),
            chunk_l1: metrics.histogram("profile.chunk.l1_misses"),
            chunk_l2: metrics.histogram("profile.chunk.l2_misses"),
            chunk_tlb: metrics.histogram("profile.chunk.tlb_misses"),
            chunk_stall: metrics.histogram("profile.chunk.stall_cycles"),
            total_accesses: metrics.counter("profile.accesses"),
            total_l1: metrics.counter("profile.l1_misses"),
            total_l2: metrics.counter("profile.l2_misses"),
            total_tlb: metrics.counter("profile.tlb_misses"),
            total_stall: metrics.counter("profile.stall_cycles"),
        }
    }

    /// Records one wall-clock span against `phase`.
    #[inline]
    pub fn record_span(&self, phase: Phase, ns: u64) {
        match phase {
            Phase::Cluster => self.cluster_ns.record(ns),
            Phase::Fetch => self.fetch_ns.record(ns),
            Phase::Decluster => self.decluster_ns.record(ns),
        }
    }

    /// Records one chunk's simulated miss counts: per-chunk histograms,
    /// running totals, and a [`EventKind::ChunkProfile`] trace event for
    /// `query` (adjacent to the chunk's `ChunkStep`).
    pub fn record_chunk(&self, obs: &crate::Obs, query: QueryId, chunk: u32, counts: MissCounts) {
        self.chunk_accesses.record(counts.accesses);
        self.chunk_l1.record(counts.l1_misses);
        self.chunk_l2.record(counts.l2_misses);
        self.chunk_tlb.record(counts.tlb_misses);
        self.chunk_stall.record(counts.stall_cycles);
        self.total_accesses.add(counts.accesses);
        self.total_l1.add(counts.l1_misses);
        self.total_l2.add(counts.l2_misses);
        self.total_tlb.add(counts.tlb_misses);
        self.total_stall.add(counts.stall_cycles);
        obs.record(
            query,
            EventKind::ChunkProfile {
                chunk,
                accesses: counts.accesses,
                l1_misses: counts.l1_misses,
                l2_misses: counts.l2_misses,
                tlb_misses: counts.tlb_misses,
                stall_cycles: counts.stall_cycles,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Obs, ObsConfig};

    #[test]
    fn phases_have_distinct_labels_and_instruments() {
        let obs = Obs::enabled(ObsConfig::default());
        let profile = obs.profile().unwrap();
        profile.record_span(Phase::Cluster, 10);
        profile.record_span(Phase::Fetch, 20);
        profile.record_span(Phase::Fetch, 30);
        profile.record_span(Phase::Decluster, 40);
        let snap = obs.metrics_snapshot().unwrap();
        assert_eq!(snap.histogram("profile.phase.cluster_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("profile.phase.fetch_ns").unwrap().count, 2);
        assert_eq!(
            snap.histogram("profile.phase.decluster_ns").unwrap().count,
            1
        );
        assert_eq!(
            [Phase::Cluster, Phase::Fetch, Phase::Decluster].map(|p| p.label()),
            ["cluster", "fetch", "decluster"]
        );
    }

    #[test]
    fn chunk_counts_feed_histograms_totals_and_trace() {
        let obs = Obs::enabled(ObsConfig::default());
        let profile = obs.profile().unwrap();
        let q = QueryId::next();
        let mut totals = MissCounts::default();
        for chunk in 0..3u32 {
            let counts = MissCounts {
                accesses: 1000 * (chunk as u64 + 1),
                l1_misses: 100,
                l2_misses: 10,
                tlb_misses: 5,
                stall_cycles: 2500,
            };
            totals.accumulate(counts);
            profile.record_chunk(&obs, q, chunk, counts);
        }
        let snap = obs.metrics_snapshot().unwrap();
        assert_eq!(snap.counter("profile.accesses"), Some(totals.accesses));
        assert_eq!(snap.counter("profile.l1_misses"), Some(300));
        assert_eq!(snap.counter("profile.stall_cycles"), Some(7500));
        assert_eq!(snap.histogram("profile.chunk.l2_misses").unwrap().count, 3);

        let events = obs.trace_snapshot().unwrap().events_for(q);
        assert_eq!(events.len(), 3);
        for (i, e) in events.iter().enumerate() {
            match e.kind {
                EventKind::ChunkProfile {
                    chunk, l1_misses, ..
                } => {
                    assert_eq!(chunk as usize, i);
                    assert_eq!(l1_misses, 100);
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn disabled_obs_yields_no_profile() {
        assert!(Obs::disabled().profile().is_none());
    }
}
