//! # rdx-cost — hierarchical-memory cost models (paper Appendix A)
//!
//! The paper models every algorithm's cost by describing its *data access
//! pattern* in terms of a handful of basic patterns over data regions
//! ([MBK02, Man02]) and composing them sequentially (`⊕`) or concurrently
//! (`⊙`).  This crate implements:
//!
//! * [`DataRegion`] — a region `R` with `|R|` tuples of `R̄` bytes.
//! * [`patterns`] — the basic patterns: `s_trav`, `rs_trav`, `r_trav`,
//!   `r_acc`, `rr_trav` and `nest`, each yielding a per-level
//!   [`PatternCost`] (sequential misses, random misses, TLB misses, CPU work).
//! * [`compose`] — sequential and concurrent composition.
//! * [`algorithms`] — the per-algorithm cost functions of Appendix A:
//!   Radix-Cluster, Partitioned Hash-Join, the Positional-Join variants,
//!   Radix-Decluster and Left/Right Jive-Join.  These are the "modeled
//!   (lines)" of Figs. 7 and 9.
//!
//! ## Converting misses to time
//!
//! Random misses at level *i* are charged the full miss latency `l_i`.
//! Sequential misses benefit from hardware prefetching and open DRAM pages
//! (paper §1.1: 3.2 GB/s sequential vs. 360 MB/s "optimal" random), so they
//! are charged `min(l_i, line_size_i / sequential_bandwidth)`.  TLB misses are
//! always charged the TLB latency.  CPU work is charged directly in cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod compose;
pub mod patterns;
pub mod region;

pub use compose::{concurrent, sequential};
pub use patterns::PatternCost;
pub use region::DataRegion;

pub use rdx_cache::CacheParams;
