//! Per-algorithm cost functions (paper Appendix A).
//!
//! Each function translates the access-pattern description given in the
//! appendix into a [`PatternCost`] under a given [`CacheParams`].  These are
//! the "modeled (lines)" series plotted against measurements in Figs. 7 and 9.

use crate::patterns::{self, PatternCost, CPU_CYCLES_PER_ITEM};
use crate::{concurrent, sequential, CacheParams, DataRegion};

/// Width of one join-index entry (two 4-byte oids).
pub const JOIN_INDEX_PAIR_BYTES: usize = 8;

/// Width of one hash-table entry in the bucket-chained hash tables
/// (bucket head or next pointer plus key digest).
pub const HASH_ENTRY_BYTES: usize = 8;

/// Cost of `radix_cluster(X, B, P)`:
/// `⊕_{p=1..P} ( s_trav(X) ⊙ nest({X_j}, 2^{B_p}, s_trav, ran) )`.
///
/// Every pass reads the whole input sequentially and appends to `2^{B_p}`
/// output cursors; once the cursor count exceeds the cache-line or TLB budget
/// the nest term degrades to per-tuple random misses (the thrashing that
/// motivates multi-pass clustering, §2.1/§2.2).
pub fn radix_cluster(
    input: DataRegion,
    bits: u32,
    passes: u32,
    params: &CacheParams,
) -> PatternCost {
    if bits == 0 || passes == 0 {
        return PatternCost::zero();
    }
    let passes = passes.min(bits);
    let mut per_pass_bits = vec![bits / passes; passes as usize];
    for bp in per_pass_bits.iter_mut().take((bits % passes) as usize) {
        *bp += 1;
    }
    let mut total = PatternCost::zero();
    for bp in per_pass_bits {
        let partitions = 1usize << bp;
        let read = patterns::s_trav(&input, params);
        let write = patterns::nest(&input, partitions, params);
        total.accumulate(&concurrent(&[read, write]));
    }
    total
}

/// Elements per software-write-combining staging slot, mirroring the kernel
/// constant `rdx_core::cluster::SWWC_SLOT_ELEMS` (the two are asserted equal
/// by the workspace conformance tests; `rdx-cost` cannot depend on
/// `rdx-core` without a cycle).
pub const SWWC_SLOT_ELEMS: usize = 8;

/// Cost of `radix_cluster` run with the **software write-combining** scatter
/// (`rdx_core::cluster::ScatterMode::Buffered`): tuples are staged in
/// per-cluster cache-line slots and flushed as full-slot copies.
///
/// Per pass, against the plain [`radix_cluster`] model:
///
/// * the sequential input read is unchanged;
/// * the per-tuple random writes move from the `2^B`-cursor output `nest`
///   (which thrashes once the cursors exceed the line/TLB budget) to the
///   **staging area** of `2^B · SWWC_SLOT_ELEMS · pair_bytes` bytes — cheap
///   while that fits the cache, the whole point of the trick;
/// * the output is written by flushes: line-granular sequential traffic
///   plus one cursor re-visit per flushed slot (`N / SWWC_SLOT_ELEMS`
///   random touches instead of `N`);
/// * one extra CPU copy per tuple (stage then flush).
///
/// The crossover this predicts — buffered cheaper than plain exactly when
/// the fan-out exceeds the plain cursor budget but the staging area still
/// fits — is what `rdx_core::cluster::plan_cluster_passes` encodes
/// geometrically, and what the `cache-sim` traced kernels reproduce in
/// simulated miss counts.
pub fn radix_cluster_buffered(
    input: DataRegion,
    bits: u32,
    passes: u32,
    pair_bytes: usize,
    params: &CacheParams,
) -> PatternCost {
    if bits == 0 || passes == 0 {
        return PatternCost::zero();
    }
    let passes = passes.min(bits);
    let mut per_pass_bits = vec![bits / passes; passes as usize];
    for bp in per_pass_bits.iter_mut().take((bits % passes) as usize) {
        *bp += 1;
    }
    let mut total = PatternCost::zero();
    for bp in per_pass_bits {
        let partitions = 1usize << bp;
        let read = patterns::s_trav(&input, params);
        // All staged writes land in the compact staging area…
        let stage = DataRegion::new(partitions * SWWC_SLOT_ELEMS, pair_bytes.max(1));
        let staging = patterns::r_acc(input.tuples, &stage, params);
        // …and reach the output slot-at-a-time: sequential line traffic plus
        // one cursor re-visit per flush.
        let mut flush = patterns::s_trav(&input, params);
        flush.accumulate(&patterns::r_acc(
            input.tuples.div_ceil(SWWC_SLOT_ELEMS),
            &input,
            params,
        ));
        // The staged copy costs one extra CPU touch per tuple.
        let mut pass_cost = concurrent(&[read, staging, flush]);
        pass_cost.cpu_cycles += input.tuples as f64 * CPU_CYCLES_PER_ITEM;
        total.accumulate(&pass_cost);
    }
    total
}

/// Cost of a non-partitioned Hash-Join
/// (`build_hash(Y,Y') ⊕ probe_hash(X,Y',Z)`).
pub fn hash_join(
    outer: DataRegion,
    inner: DataRegion,
    result_tuples: usize,
    params: &CacheParams,
) -> PatternCost {
    let hash_table = DataRegion::new(inner.tuples * 2, HASH_ENTRY_BYTES);
    let build = concurrent(&[
        patterns::s_trav(&inner, params),
        patterns::r_trav(&hash_table, params),
    ]);
    let output = DataRegion::new(result_tuples, JOIN_INDEX_PAIR_BYTES);
    let probe = concurrent(&[
        patterns::s_trav(&outer, params),
        patterns::r_acc(outer.tuples, &hash_table, params),
        patterns::s_trav(&output, params),
    ]);
    sequential(&[build, probe])
}

/// Cost of `part_hash_join({X_p}, {Y_p}, B)`: a simple Hash-Join per pair of
/// matching clusters.  Does **not** include the Radix-Cluster cost of building
/// the partitions; Fig. 9b plots the join phase in isolation.
pub fn partitioned_hash_join(
    outer: DataRegion,
    inner: DataRegion,
    bits: u32,
    result_tuples: usize,
    params: &CacheParams,
) -> PatternCost {
    let partitions = 1usize << bits;
    let per_cluster = hash_join(
        outer.split(partitions),
        inner.split(partitions),
        result_tuples.div_ceil(partitions),
        params,
    );
    per_cluster.scaled(partitions as f64)
}

/// Cost of `unsort_pos_join(X, Y, Z)`: sequential scan of the join index and
/// the output, random access into the projection column.
pub fn positional_join_unsorted(
    index_tuples: usize,
    column: DataRegion,
    value_width: usize,
    params: &CacheParams,
) -> PatternCost {
    let index = DataRegion::new(index_tuples, crate::algorithms::JOIN_INDEX_PAIR_BYTES / 2);
    let output = DataRegion::new(index_tuples, value_width);
    concurrent(&[
        patterns::s_trav(&index, params),
        patterns::r_acc(index_tuples, &column, params),
        patterns::s_trav(&output, params),
    ])
}

/// Cost of `sort_pos_join(X, Y, Z)`: all three regions traversed sequentially
/// (the join index is ordered on the projection side's oids).
pub fn positional_join_sorted(
    index_tuples: usize,
    column: DataRegion,
    value_width: usize,
    params: &CacheParams,
) -> PatternCost {
    let index = DataRegion::new(index_tuples, crate::algorithms::JOIN_INDEX_PAIR_BYTES / 2);
    let output = DataRegion::new(index_tuples, value_width);
    concurrent(&[
        patterns::s_trav(&index, params),
        patterns::s_trav(&column, params),
        patterns::s_trav(&output, params),
    ])
}

/// Cost of `clust_pos_join({X_p}, {Y_p}, B)`: an unsorted positional join per
/// cluster, each restricted to a `1/2^B` slice of the projection column
/// (Fig. 9c).  With enough radix bits the per-cluster slice fits the cache and
/// the random accesses become cheap.
pub fn positional_join_clustered(
    index_tuples: usize,
    column: DataRegion,
    value_width: usize,
    bits: u32,
    params: &CacheParams,
) -> PatternCost {
    if bits == 0 {
        return positional_join_unsorted(index_tuples, column, value_width, params);
    }
    let clusters = 1usize << bits;
    let per_cluster = positional_join_unsorted(
        index_tuples.div_ceil(clusters),
        column.split(clusters),
        value_width,
        params,
    );
    per_cluster.scaled(clusters as f64)
}

/// Cost of `radix_decluster({X_j}, {Y_j}, Z, #w)` (Fig. 6 / Appendix A).
///
/// * `n` — number of result tuples (`|CLUST_VALUES| = |CLUST_RESULT|`).
/// * `value_width` — width of the projected values.
/// * `bits` — radix bits of the input clustering (`2^bits` clusters).
/// * `window_bytes` — insertion-window size `‖W‖`.
///
/// The three cost drivers the paper identifies (Fig. 7a) are all represented:
/// per-(window × cluster) chunk start-up misses in `CLUST_VALUES` and
/// `CLUST_RESULT` (dominant for small windows), random insertions into the
/// window (cheap while `‖W‖ ≤ C`, explosive beyond), and the repeated scan of
/// the cluster-border array.
pub fn radix_decluster(
    n: usize,
    value_width: usize,
    bits: u32,
    window_bytes: usize,
    params: &CacheParams,
) -> PatternCost {
    if n == 0 {
        return PatternCost::zero();
    }
    let clusters = 1usize << bits;
    let values = DataRegion::new(n, value_width);
    let ids = DataRegion::new(n, 4);
    let output_bytes = n * value_width;
    let windows = output_bytes.div_ceil(window_bytes.max(1)).max(1);
    // Average tuples drained from one cluster while filling one window.
    let w = (n as f64 / (windows * clusters) as f64).max(1.0);

    let mut cost = PatternCost::zero();

    // Sequential reads of CLUST_VALUES and CLUST_RESULT, chunked per
    // (window, cluster): every chunk start costs at least one line / one page.
    for (region, idx_width) in [(values, value_width), (ids, 4usize)] {
        let chunk_bytes = w * idx_width as f64;
        let mut chunk = PatternCost::zero();
        for i in 0..params.levels.len().min(2) {
            let lines = (chunk_bytes / params.levels[i].line_size as f64)
                .ceil()
                .max(1.0);
            chunk.seq_misses[i] = lines;
        }
        chunk.tlb_misses = if clusters > params.tlb.entries {
            // One new page touched per chunk start once the cursors exceed the TLB.
            (chunk_bytes / params.tlb.page_size as f64).ceil().max(1.0)
        } else {
            chunk_bytes / params.tlb.page_size as f64
        };
        chunk.cpu_cycles = w * CPU_CYCLES_PER_ITEM;
        cost.accumulate(&chunk.scaled((windows * clusters) as f64));
        let _ = region;
    }

    // Random insertions into the window: per window, |W| tuples inserted into
    // a ‖W‖-byte region; beyond the cache capacity (or TLB reach) they miss.
    let window_region = DataRegion::new(window_bytes / value_width.max(1), value_width);
    let tuples_per_window = n.div_ceil(windows);
    let inserts = patterns::r_acc(tuples_per_window, &window_region, params).scaled(windows as f64);
    cost.accumulate(&inserts);

    // Repeated sequential scan of the cluster start/end array.
    let borders = DataRegion::new(clusters, 8);
    cost.accumulate(&patterns::rs_trav(windows, &borders, params));

    cost
}

/// Cost of the *streaming* (chunked) Radix-Decluster used by the
/// memory-budgeted pipeline: the result is produced in `chunks` contiguous
/// chunks of ≈ `n / chunks` rows, each a self-contained decluster problem.
///
/// Two terms on top of the monolithic [`radix_decluster`] cost:
///
/// 1. the per-chunk kernel cost, scaled by the chunk count — slightly more
///    than the monolithic run because every chunk pays its own window ramp-up;
/// 2. a chunk-restart term: at every chunk boundary each of the `2^bits`
///    cluster cursors is re-positioned with a binary search whose final probe
///    is a random access into `CLUST_RESULT` — this is the price of shrinking
///    the working set from `O(N)` to `O(N / chunks)` values, and it grows
///    linearly in `chunks · 2^bits` (why the planner never chunks finer than
///    the budget demands).
pub fn streaming_radix_decluster(
    n: usize,
    value_width: usize,
    bits: u32,
    window_bytes: usize,
    chunks: usize,
    params: &CacheParams,
) -> PatternCost {
    if n == 0 {
        return PatternCost::zero();
    }
    let chunks = chunks.clamp(1, n);
    let chunk_rows = n.div_ceil(chunks);
    let mut cost =
        radix_decluster(chunk_rows, value_width, bits, window_bytes, params).scaled(chunks as f64);
    let clusters = 1usize << bits;
    let positions = DataRegion::new(n, 4);
    cost.accumulate(&patterns::r_acc(
        chunks.saturating_mul(clusters),
        &positions,
        params,
    ));
    cost
}

/// Cost of one streaming Radix-Decluster run while `active_queries` streaming
/// queries are admitted concurrently — the **concurrent-share** term the
/// serving layer's admission controller prices queries with.
///
/// Concurrency changes nothing about the access pattern; what it changes is
/// the *effective hierarchy*: the outermost cache and the sequential RAM
/// bandwidth are shared, so each query sees a `1/active_queries` slice of
/// both ([`CacheParams::per_query_share`]).  A window tuned to the full
/// cache therefore starts missing once a co-runner evicts its lines — the
/// model prices exactly that by re-evaluating the unchanged pattern against
/// the shrunken share, the same move `per_core_share` makes for threads of a
/// single query.  Monotone in `active_queries`; identical to
/// [`streaming_radix_decluster`] at one query.
pub fn concurrent_streaming_radix_decluster(
    n: usize,
    value_width: usize,
    bits: u32,
    window_bytes: usize,
    chunks: usize,
    active_queries: usize,
    params: &CacheParams,
) -> PatternCost {
    let share = params.per_query_share(active_queries.max(1));
    streaming_radix_decluster(n, value_width, bits, window_bytes, chunks, &share)
}

/// Cost of the first (Left) Jive-Join phase: merge the sorted join index with
/// the left table sequentially, writing two cluster-partitioned outputs
/// (access pattern analogous to single-pass Radix-Cluster).
pub fn jive_join_left(
    index_tuples: usize,
    left_table: DataRegion,
    projected_width: usize,
    bits: u32,
    params: &CacheParams,
) -> PatternCost {
    let clusters = 1usize << bits;
    let index = DataRegion::new(index_tuples, JOIN_INDEX_PAIR_BYTES);
    let result_left = DataRegion::new(index_tuples, projected_width);
    let reordered_index = DataRegion::new(index_tuples, 4);
    concurrent(&[
        patterns::s_trav(&index, params),
        patterns::s_trav(&left_table, params),
        patterns::nest(&result_left, clusters, params),
        patterns::nest(&reordered_index, clusters, params),
    ])
}

/// Cost of the second (Right) Jive-Join phase: per cluster, merge with the
/// right table sequentially and write the right half of the result back in
/// final order (random within the cluster's output range).
pub fn jive_join_right(
    index_tuples: usize,
    right_table: DataRegion,
    projected_width: usize,
    bits: u32,
    params: &CacheParams,
) -> PatternCost {
    let clusters = 1usize << bits;
    let per_cluster_index = DataRegion::new(index_tuples.div_ceil(clusters), 4);
    let per_cluster_table = right_table.split(clusters);
    let per_cluster_output = DataRegion::new(index_tuples.div_ceil(clusters), projected_width);
    let per_cluster = concurrent(&[
        patterns::s_trav(&per_cluster_index, params),
        patterns::s_trav(&per_cluster_table, params),
        // Appendix A: `r_trav(Z_p)` — the writes land in random order within
        // the cluster's slice of the result, so too-few (= too-big) clusters
        // make this slice exceed the cache and the writes latency-bound.
        patterns::r_trav(&per_cluster_output, params),
    ]);
    per_cluster.scaled(clusters as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CacheParams {
        CacheParams::paper_pentium4()
    }

    const MB8: usize = 8_000_000;

    #[test]
    fn radix_cluster_has_sweet_spot_in_bits() {
        let p = params();
        let input = DataRegion::new(MB8, 8);
        let cheap = radix_cluster(input, 8, 1, &p).millis(&p);
        let thrash = radix_cluster(input, 16, 1, &p).millis(&p);
        // 2^16 single-pass cursors thrash the TLB/caches; 2^8 do not.
        assert!(thrash > 2.0 * cheap, "thrash {thrash} vs cheap {cheap}");
        // Two passes tame the 16-bit clustering.
        let two_pass = radix_cluster(input, 16, 2, &p).millis(&p);
        assert!(two_pass < thrash);
    }

    #[test]
    fn buffered_scatter_beats_thrashing_plain_and_loses_below_the_budget() {
        let p = params();
        let input = DataRegion::new(MB8, 8);
        // 2^14 cursors thrash a plain single pass; the 2^14 · 64-byte staging
        // area (1 MB > L2) is also too big — but at 2^12 staging fits and
        // buffered must win while plain still thrashes.
        let plain_12 = radix_cluster(input, 12, 1, &p).millis(&p);
        let buffered_12 = radix_cluster_buffered(input, 12, 1, 8, &p).millis(&p);
        assert!(
            buffered_12 < plain_12 / 2.0,
            "buffered {buffered_12} vs plain {plain_12}"
        );
        // One buffered pass also beats the two plain passes the seed kernel
        // would have used — the planner's `1 buffered ≻ 2 plain` move.
        let two_plain = radix_cluster(input, 12, 2, &p).millis(&p);
        assert!(
            buffered_12 < two_plain,
            "buffered {buffered_12} vs two plain passes {two_plain}"
        );
        // With the cursor set fully resident (within even the TLB budget)
        // the staging copy and flush re-visits are pure overhead.
        let plain_5 = radix_cluster(input, 5, 1, &p).millis(&p);
        let buffered_5 = radix_cluster_buffered(input, 5, 1, 8, &p).millis(&p);
        assert!(
            buffered_5 > plain_5,
            "buffered {buffered_5} vs plain {plain_5}"
        );
        // Degenerate inputs cost nothing.
        assert_eq!(
            radix_cluster_buffered(input, 0, 1, 8, &p),
            PatternCost::zero()
        );
        assert_eq!(
            radix_cluster_buffered(input, 4, 0, 8, &p),
            PatternCost::zero()
        );
    }

    #[test]
    fn partitioned_hash_join_improves_with_bits_then_flattens() {
        let p = params();
        let r = DataRegion::new(MB8, 8);
        let unpartitioned = hash_join(r, r, MB8, &p).millis(&p);
        let partitioned = partitioned_hash_join(r, r, 10, MB8, &p).millis(&p);
        assert!(
            partitioned < unpartitioned / 2.0,
            "partitioned {partitioned} vs naive {unpartitioned}"
        );
    }

    #[test]
    fn clustered_positional_join_beats_unsorted_on_large_columns() {
        let p = params();
        let column = DataRegion::new(MB8, 4);
        let unsorted = positional_join_unsorted(MB8, column, 4, &p).millis(&p);
        let clustered = positional_join_clustered(MB8, column, 4, 8, &p).millis(&p);
        let sorted = positional_join_sorted(MB8, column, 4, &p).millis(&p);
        assert!(clustered < unsorted / 2.0);
        assert!(sorted < unsorted);
    }

    #[test]
    fn decluster_window_sweep_matches_fig7a_shape() {
        let p = params();
        let n = MB8;
        let at = |window: usize| radix_decluster(n, 4, 8, window, &p).millis(&p);
        let tiny = at(1 << 10); // 1 KB
        let good = at(256 << 10); // 256 KB (≤ C, ≥ TLB reach boundary)
        let too_big = at(32 << 20); // 32 MB (≫ C)
                                    // Cost falls from tiny windows to the sweet spot…
        assert!(good < tiny, "good {good} vs tiny {tiny}");
        // …and rises sharply once the window exceeds the L2 capacity.
        assert!(too_big > 2.0 * good, "too_big {too_big} vs good {good}");
    }

    #[test]
    fn decluster_cost_grows_with_bits() {
        let p = params();
        let low = radix_decluster(MB8, 4, 6, 256 << 10, &p).millis(&p);
        let high = radix_decluster(MB8, 4, 16, 256 << 10, &p).millis(&p);
        assert!(high > low);
    }

    #[test]
    fn streaming_decluster_approaches_monolithic_as_chunks_shrink() {
        let p = params();
        let at =
            |chunks: usize| streaming_radix_decluster(MB8, 4, 8, 256 << 10, chunks, &p).millis(&p);
        let monolithic = radix_decluster(MB8, 4, 8, 256 << 10, &p).millis(&p);
        // One chunk is the monolithic run plus a negligible restart term.
        assert!(at(1) >= monolithic);
        assert!(at(1) < monolithic * 1.05, "{} vs {monolithic}", at(1));
        // Finer chunking costs strictly more (restart term grows with chunks).
        assert!(at(16) < at(256));
        assert!(at(256) < at(16_384));
    }

    #[test]
    fn streaming_decluster_restart_term_scales_with_clusters() {
        let p = params();
        let few = streaming_radix_decluster(MB8, 4, 6, 256 << 10, 1_024, &p).millis(&p);
        let many = streaming_radix_decluster(MB8, 4, 14, 256 << 10, 1_024, &p).millis(&p);
        assert!(many > few);
        assert_eq!(
            streaming_radix_decluster(0, 4, 8, 1024, 7, &p),
            PatternCost::zero()
        );
    }

    #[test]
    fn concurrent_share_raises_predicted_cost_monotonically() {
        let p = params();
        // Window sized to the *whole* cache: any co-runner pushes it past the
        // per-query share, which is exactly the thrash the term must price.
        let window = p.cache_capacity();
        let at = |q: usize| {
            concurrent_streaming_radix_decluster(MB8, 4, 8, window, 16, q, &p).millis(&p)
        };
        // One active query is priced exactly as the solo streaming run, and
        // a zero count degrades to one instead of dividing by zero.
        let solo = streaming_radix_decluster(MB8, 4, 8, window, 16, &p).millis(&p);
        assert_eq!(at(1), solo);
        assert_eq!(at(0), solo);
        // Each co-runner shrinks the effective cache share, so the predicted
        // cost can only grow with the number of admitted queries.
        assert!(at(2) > at(1), "{} vs {}", at(2), at(1));
        assert!(at(4) > at(2));
        assert!(at(16) > at(4));
    }

    #[test]
    fn jive_left_suffers_from_high_fanout() {
        let p = params();
        let table = DataRegion::new(MB8, 16);
        let few = jive_join_left(MB8, table, 16, 6, &p).millis(&p);
        let many = jive_join_left(MB8, table, 16, 14, &p).millis(&p);
        assert!(many > few);
    }

    #[test]
    fn jive_right_suffers_from_too_few_clusters() {
        let p = params();
        let table = DataRegion::new(MB8, 16);
        let few = jive_join_right(MB8, table, 16, 2, &p).millis(&p);
        let enough = jive_join_right(MB8, table, 16, 10, &p).millis(&p);
        assert!(few > enough);
    }

    #[test]
    fn zero_sized_inputs_cost_nothing() {
        let p = params();
        assert_eq!(
            radix_cluster(DataRegion::new(0, 8), 0, 1, &p),
            PatternCost::zero()
        );
        assert_eq!(radix_decluster(0, 4, 8, 1024, &p), PatternCost::zero());
    }
}
