//! Composition of access patterns.
//!
//! Appendix A composes basic patterns with two operators: `⊕` (sequential
//! execution — one pattern after the other) and `⊙` (concurrent execution —
//! patterns interleaved over the same loop, e.g. reading the input while
//! writing the output).  In the Manegold framework sequential composition adds
//! costs, while concurrent composition adds the *misses* of the participating
//! streams but may overlap some latency.  We use the simplest faithful
//! approximation — both compositions add component-wise — and document the
//! consequence: concurrent compositions are charged slightly pessimistically.
//! Because every strategy we compare is charged the same way, the *relative*
//! orderings (which is what the figures are about) are unaffected.

use crate::PatternCost;

/// Sequential composition `⊕`: the patterns execute one after another.
pub fn sequential(parts: &[PatternCost]) -> PatternCost {
    let mut total = PatternCost::zero();
    for p in parts {
        total.accumulate(p);
    }
    total
}

/// Concurrent composition `⊙`: the patterns execute interleaved within one
/// loop over the data.
pub fn concurrent(parts: &[PatternCost]) -> PatternCost {
    // Component-wise addition of misses; CPU work is also added because each
    // stream's per-item work still has to be executed.
    sequential(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::s_trav;
    use crate::{CacheParams, DataRegion};

    #[test]
    fn sequential_adds_components() {
        let p = CacheParams::paper_pentium4();
        let a = s_trav(&DataRegion::new(1000, 4), &p);
        let b = s_trav(&DataRegion::new(2000, 4), &p);
        let c = sequential(&[a, b]);
        assert_eq!(c.seq_misses[0], a.seq_misses[0] + b.seq_misses[0]);
        assert_eq!(c.cpu_cycles, a.cpu_cycles + b.cpu_cycles);
    }

    #[test]
    fn empty_composition_is_zero() {
        assert_eq!(sequential(&[]), PatternCost::zero());
        assert_eq!(concurrent(&[]), PatternCost::zero());
    }

    #[test]
    fn concurrent_matches_sequential_by_design() {
        let p = CacheParams::paper_pentium4();
        let a = s_trav(&DataRegion::new(1000, 4), &p);
        let b = s_trav(&DataRegion::new(500, 8), &p);
        assert_eq!(concurrent(&[a, b]), sequential(&[a, b]));
    }
}
