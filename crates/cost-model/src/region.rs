//! Data regions: the operands of the cost models.

/// A data region `R`: `|R|` data items of `R̄` bytes each (Table 1 of the
/// paper's Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataRegion {
    /// Number of data items `|R|`.
    pub tuples: usize,
    /// Width of one data item in bytes `R̄`.
    pub width: usize,
}

impl DataRegion {
    /// A region of `tuples` items of `width` bytes.
    pub fn new(tuples: usize, width: usize) -> Self {
        DataRegion { tuples, width }
    }

    /// A region of `tuples` 4-byte items — the common case throughout the
    /// paper (oids and integer attribute values are both 4 bytes wide).
    pub fn of_u32(tuples: usize) -> Self {
        DataRegion::new(tuples, 4)
    }

    /// Total size `‖R‖ = |R| · R̄` in bytes.
    pub fn byte_size(&self) -> usize {
        self.tuples * self.width
    }

    /// The region holding `1/parts` of this region (used for clusters and for
    /// the per-window slices of Radix-Decluster).  Rounds up so that costs
    /// never silently drop the remainder tuples.
    pub fn split(&self, parts: usize) -> DataRegion {
        DataRegion {
            tuples: self.tuples.div_ceil(parts.max(1)),
            width: self.width,
        }
    }

    /// A region covering the same bytes but viewed with a different item
    /// width (e.g. a join-index viewed as 8-byte pairs instead of two 4-byte
    /// columns).
    pub fn with_width(&self, width: usize) -> DataRegion {
        DataRegion {
            tuples: self.byte_size() / width.max(1),
            width,
        }
    }

    /// `true` if the region fits within `capacity` bytes.
    pub fn fits(&self, capacity: usize) -> bool {
        self.byte_size() <= capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_is_product() {
        let r = DataRegion::new(1000, 4);
        assert_eq!(r.byte_size(), 4000);
        assert_eq!(DataRegion::of_u32(10).byte_size(), 40);
    }

    #[test]
    fn split_rounds_up() {
        let r = DataRegion::new(10, 4);
        assert_eq!(r.split(3).tuples, 4);
        assert_eq!(r.split(1), r);
        assert_eq!(r.split(0).tuples, 10);
    }

    #[test]
    fn with_width_preserves_bytes() {
        let r = DataRegion::new(100, 4);
        let pairs = r.with_width(8);
        assert_eq!(pairs.tuples, 50);
        assert_eq!(pairs.byte_size(), r.byte_size());
    }

    #[test]
    fn fits_compares_total_bytes() {
        let r = DataRegion::new(100, 4);
        assert!(r.fits(400));
        assert!(!r.fits(399));
    }
}
