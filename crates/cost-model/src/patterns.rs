//! The basic access patterns of the cost framework.
//!
//! Each pattern is a function of one or more [`DataRegion`]s and the
//! [`CacheParams`], and yields a [`PatternCost`]: estimated sequential misses,
//! random misses and TLB misses for every cache level, plus a CPU-work term.
//! The per-level estimates follow the standard Manegold approximations: a
//! region that fits a level only ever pays cold (compulsory) misses there; a
//! region that exceeds it pays capacity misses proportional to the fraction of
//! the region that cannot be resident.

use crate::{CacheParams, DataRegion};

/// Nominal CPU work per logical data item touched, in cycles.  The paper's
/// column-at-a-time operators run tight hard-coded loops; a couple of cycles
/// per item is the right order of magnitude and keeps CPU visible (but small)
/// next to memory stalls, as the paper observes.
pub const CPU_CYCLES_PER_ITEM: f64 = 2.0;

/// Per-level and CPU cost components of one access pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PatternCost {
    /// Sequential (prefetchable) misses per cache level, innermost first.
    pub seq_misses: [f64; 2],
    /// Random (latency-bound) misses per cache level, innermost first.
    pub rand_misses: [f64; 2],
    /// TLB misses.
    pub tlb_misses: f64,
    /// CPU work in cycles.
    pub cpu_cycles: f64,
}

impl PatternCost {
    /// The all-zero cost.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Adds `other` into `self` (both misses and CPU).
    pub fn accumulate(&mut self, other: &PatternCost) {
        for i in 0..2 {
            self.seq_misses[i] += other.seq_misses[i];
            self.rand_misses[i] += other.rand_misses[i];
        }
        self.tlb_misses += other.tlb_misses;
        self.cpu_cycles += other.cpu_cycles;
    }

    /// Scales every component by `factor` (e.g. "per cluster" costs times the
    /// number of clusters).
    pub fn scaled(&self, factor: f64) -> PatternCost {
        PatternCost {
            seq_misses: [self.seq_misses[0] * factor, self.seq_misses[1] * factor],
            rand_misses: [self.rand_misses[0] * factor, self.rand_misses[1] * factor],
            tlb_misses: self.tlb_misses * factor,
            cpu_cycles: self.cpu_cycles * factor,
        }
    }

    /// Total predicted cycles under `params` (see the crate docs for how
    /// sequential misses are discounted).
    pub fn cycles(&self, params: &CacheParams) -> f64 {
        let mut total = self.cpu_cycles;
        for (i, level) in params.levels.iter().enumerate().take(2) {
            let seq_cost = (level.line_size as f64 / params.sequential_bandwidth * params.cpu_hz)
                .min(level.miss_latency_cycles as f64);
            total += self.seq_misses[i] * seq_cost;
            total += self.rand_misses[i] * level.miss_latency_cycles as f64;
        }
        total += self.tlb_misses * params.tlb.miss_latency_cycles as f64;
        total
    }

    /// Total predicted milliseconds under `params`.
    pub fn millis(&self, params: &CacheParams) -> f64 {
        params.cycles_to_seconds(self.cycles(params)) * 1e3
    }

    /// Total predicted nanoseconds under `params` — the granularity the
    /// observability layer records chunk wall-clock at, so predicted and
    /// observed land in the same histogram units.
    pub fn nanos(&self, params: &CacheParams) -> f64 {
        params.cycles_to_seconds(self.cycles(params)) * 1e9
    }

    /// Predicted misses at the innermost (L1) level.
    pub fn l1_misses(&self) -> f64 {
        self.seq_misses[0] + self.rand_misses[0]
    }

    /// Predicted misses at the outermost (L2) level.
    pub fn l2_misses(&self) -> f64 {
        self.seq_misses[1] + self.rand_misses[1]
    }
}

fn level_count(params: &CacheParams) -> usize {
    params.levels.len().min(2)
}

/// Cold misses of a region at one level: one miss per line it spans.
fn cold_misses(region: &DataRegion, line_size: usize) -> f64 {
    (region.byte_size() as f64 / line_size as f64).ceil()
}

/// `s_trav(R)` — single sequential traversal of `R`.
pub fn s_trav(region: &DataRegion, params: &CacheParams) -> PatternCost {
    let mut cost = PatternCost {
        cpu_cycles: region.tuples as f64 * CPU_CYCLES_PER_ITEM,
        ..PatternCost::zero()
    };
    for i in 0..level_count(params) {
        cost.seq_misses[i] = cold_misses(region, params.levels[i].line_size);
    }
    cost.tlb_misses = (region.byte_size() as f64 / params.tlb.page_size as f64).ceil();
    cost
}

/// `rs_trav(k, R)` — `k` repeated sequential traversals of `R`.
///
/// If `R` fits a level (or the TLB reach) only the first traversal misses
/// there; otherwise every traversal pays the full cold-miss count again.
pub fn rs_trav(k: usize, region: &DataRegion, params: &CacheParams) -> PatternCost {
    let mut cost = PatternCost {
        cpu_cycles: (k * region.tuples) as f64 * CPU_CYCLES_PER_ITEM,
        ..PatternCost::zero()
    };
    for i in 0..level_count(params) {
        let level = &params.levels[i];
        let once = cold_misses(region, level.line_size);
        cost.seq_misses[i] = if region.fits(level.capacity) {
            once
        } else {
            once * k as f64
        };
    }
    let pages = (region.byte_size() as f64 / params.tlb.page_size as f64).ceil();
    cost.tlb_misses = if region.byte_size() <= params.tlb.reach() {
        pages
    } else {
        pages * k as f64
    };
    cost
}

/// `r_trav(R)` — single random traversal: every item of `R` is touched exactly
/// once, in random order.
pub fn r_trav(region: &DataRegion, params: &CacheParams) -> PatternCost {
    r_acc(region.tuples, region, params)
}

/// `rr_trav(k, R, stride)` — repetitive random traversal: `R` is traversed `k`
/// times, each traversal touching `|R|/k` items with the given access stride
/// (Appendix A uses this for the Radix-Decluster insertion window, which is
/// traversed once per input cluster with stride `2^B · X̄`).
///
/// Across all `k` traversals every item is touched exactly once, so the
/// capacity behaviour is that of a single random traversal; the stride only
/// matters for how many items share a line within one traversal, which the
/// random-access approximation already captures.
pub fn rr_trav(k: usize, region: &DataRegion, _stride: usize, params: &CacheParams) -> PatternCost {
    let mut cost = r_acc(region.tuples, region, params);
    // Re-walking the cluster boundaries k times is pure CPU bookkeeping.
    cost.cpu_cycles += k as f64 * CPU_CYCLES_PER_ITEM;
    cost
}

/// `r_acc(n, R)` — `n` independent random accesses into region `R`.
///
/// If `R` fits a level, only cold misses occur (at most one per line, and no
/// more than `n`).  If it does not fit, a fraction `1 − C/‖R‖` of the accesses
/// miss on top of the cold misses of the resident fraction.
pub fn r_acc(n: usize, region: &DataRegion, params: &CacheParams) -> PatternCost {
    let mut cost = PatternCost {
        cpu_cycles: n as f64 * CPU_CYCLES_PER_ITEM,
        ..PatternCost::zero()
    };
    let bytes = region.byte_size() as f64;
    for i in 0..level_count(params) {
        let level = &params.levels[i];
        let cold = cold_misses(region, level.line_size).min(n as f64);
        cost.rand_misses[i] = if region.fits(level.capacity) {
            cold
        } else {
            let resident_fraction = level.capacity as f64 / bytes;
            let capacity_misses = n as f64 * (1.0 - resident_fraction);
            capacity_misses + cold * resident_fraction
        };
    }
    let pages = (bytes / params.tlb.page_size as f64).ceil().min(n as f64);
    cost.tlb_misses = if region.byte_size() <= params.tlb.reach() {
        pages
    } else {
        let resident_fraction = params.tlb.reach() as f64 / bytes;
        n as f64 * (1.0 - resident_fraction) + pages * resident_fraction
    };
    cost
}

/// `nest({R_j}, H, s_trav, ran)` — interleaved multi-cursor sequential access:
/// `H` output partitions are written sequentially but in random interleaving,
/// as the partitioning phase of Radix-Cluster does.
///
/// As long as one line (and one TLB entry) per cursor fits the level, the cost
/// degenerates to a sequential traversal of the union.  Once `H` exceeds the
/// number of available lines (or TLB entries), the cursors evict each other
/// and every single item write misses — this is exactly the cache/TLB
/// thrashing that limits single-pass partitioning (§2.1) and produces the
/// upward steps in Fig. 9a.
pub fn nest(total: &DataRegion, partitions: usize, params: &CacheParams) -> PatternCost {
    let mut cost = PatternCost {
        cpu_cycles: total.tuples as f64 * CPU_CYCLES_PER_ITEM,
        ..PatternCost::zero()
    };
    for i in 0..level_count(params) {
        let level = &params.levels[i];
        // Conservative usable-line estimate: a set-associative cache cannot
        // dedicate every line to a distinct cursor; half is a common rule of
        // thumb and matches where the measured knees appear.
        let usable_lines = level.lines() / 2;
        cost.rand_misses[i] = if partitions <= usable_lines.max(1) {
            cold_misses(total, level.line_size)
        } else {
            total.tuples as f64
        };
    }
    let usable_tlb = (params.tlb.entries / 2).max(1);
    cost.tlb_misses = if partitions <= usable_tlb {
        (total.byte_size() as f64 / params.tlb.page_size as f64).ceil()
    } else {
        total.tuples as f64
    };
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CacheParams {
        CacheParams::paper_pentium4()
    }

    #[test]
    fn s_trav_counts_lines_and_pages() {
        let p = params();
        let r = DataRegion::new(1_000_000, 4); // 4 MB
        let c = s_trav(&r, &p);
        assert_eq!(c.seq_misses[0], (4_000_000f64 / 32.0).ceil());
        assert_eq!(c.seq_misses[1], (4_000_000f64 / 128.0).ceil());
        assert_eq!(c.tlb_misses, (4_000_000f64 / 4096.0).ceil());
        assert_eq!(c.rand_misses, [0.0, 0.0]);
        assert!(c.cpu_cycles > 0.0);
    }

    #[test]
    fn rs_trav_free_repeats_when_resident() {
        let p = params();
        let small = DataRegion::new(1000, 4); // 4 KB — fits everything
        let once = rs_trav(1, &small, &p);
        let many = rs_trav(10, &small, &p);
        assert_eq!(once.seq_misses, many.seq_misses);
        assert!(many.cpu_cycles > once.cpu_cycles);

        let big = DataRegion::new(1_000_000, 4); // 4 MB — fits nothing
        let big10 = rs_trav(10, &big, &p);
        let big1 = rs_trav(1, &big, &p);
        assert!(big10.seq_misses[1] > 9.0 * big1.seq_misses[1]);
    }

    #[test]
    fn r_acc_cheap_when_region_fits_cache() {
        let p = params();
        let resident = DataRegion::new(10_000, 4); // 40 KB < 512 KB L2
        let c = r_acc(1_000_000, &resident, &p);
        // At most one (L2) miss per line of the region, regardless of n.
        assert!(c.rand_misses[1] <= (40_000f64 / 128.0).ceil());
        // L1 (16 KB) is overflowed, so L1 misses are plentiful.
        assert!(c.rand_misses[0] > c.rand_misses[1]);
    }

    #[test]
    fn r_acc_scales_with_n_when_region_exceeds_cache() {
        let p = params();
        let huge = DataRegion::new(10_000_000, 4); // 40 MB
        let c1 = r_acc(1_000_000, &huge, &p);
        let c2 = r_acc(2_000_000, &huge, &p);
        assert!(c2.rand_misses[1] > 1.9 * c1.rand_misses[1]);
        assert!(c2.tlb_misses > 1.9 * c1.tlb_misses);
    }

    #[test]
    fn r_trav_equals_racc_of_all_tuples() {
        let p = params();
        let r = DataRegion::new(123_456, 4);
        assert_eq!(r_trav(&r, &p), r_acc(123_456, &r, &p));
    }

    #[test]
    fn nest_explodes_beyond_line_budget() {
        let p = params();
        let out = DataRegion::new(1_000_000, 8);
        let few = nest(&out, 8, &p);
        let many = nest(&out, 100_000, &p);
        assert!(few.rand_misses[1] < many.rand_misses[1]);
        assert_eq!(many.rand_misses[1], 1_000_000.0);
        // TLB thrashing kicks in even earlier (64-entry TLB).
        let mid = nest(&out, 256, &p);
        assert_eq!(mid.tlb_misses, 1_000_000.0);
        assert!(few.tlb_misses < mid.tlb_misses);
    }

    #[test]
    fn cycles_weight_random_misses_more_than_sequential() {
        let p = params();
        let r = DataRegion::new(1_000_000, 4);
        let seq = s_trav(&r, &p);
        let rand = r_trav(&r, &p);
        assert!(rand.cycles(&p) > seq.cycles(&p));
        assert!(seq.millis(&p) > 0.0);
    }

    #[test]
    fn scaled_multiplies_all_components() {
        let p = params();
        let r = DataRegion::new(1000, 4);
        let c = s_trav(&r, &p);
        let d = c.scaled(3.0);
        assert_eq!(d.seq_misses[0], 3.0 * c.seq_misses[0]);
        assert_eq!(d.cpu_cycles, 3.0 * c.cpu_cycles);
    }
}
