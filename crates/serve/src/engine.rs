//! The **ticket-granular query engine**: the persistent core the whole
//! serving layer (and the `rdx-api` `Session` front door) runs on.
//!
//! PR 3's [`crate::server::RdxServer::run_batch`] was a synchronous
//! all-or-nothing call: admission, scheduling and chunk execution lived
//! inside one loop whose in-flight state borrowed the catalog, so there was
//! no API surface on which to accept a query while a batch was in flight.
//! This module factors that loop into a value with *open* edges:
//!
//! * [`QueryEngine::submit`] validates a request against the catalog and
//!   enqueues it, returning a non-blocking [`TicketId`] immediately — at any
//!   time, including between chunk steps of other in-flight queries (the
//!   async-front enabler the ROADMAP asks for);
//! * [`QueryEngine::step`] pumps exactly one scheduler decision: admit from
//!   the queue head while budget and slots allow, then run **one chunk of
//!   one query** under the stride-scheduling fairness policy — the same
//!   decision sequence the old batch loop made, now resumable from outside;
//! * [`QueryEngine::status`] / [`QueryEngine::take_outcome`] observe a
//!   ticket without blocking.
//!
//! ## The ticket state machine
//!
//! ```text
//! submit ──► Queued ──admit──► Running ──last chunk──► Finished ──take──► gone
//!    │                                                    ▲
//!    └── validation / admission failure ──────────────────┘  (outcome = Err)
//! ```
//!
//! A ticket moves strictly left to right.  `Queued` tickets wait in FIFO
//! order (admission never skips the queue head, so arrival order bounds
//! waiting); `Running` tickets are parked [`rdx_exec::PipelineRun`]s that
//! own `Arc` clones of their relations (never borrowing the catalog, which
//! is what lets the engine hold them across calls); `Finished` tickets park
//! their outcome — the materialised result or a typed
//! [`RdxError`] — until exactly one [`QueryEngine::take_outcome`] claims it.
//!
//! Everything fallible reports the workspace-wide [`RdxError`]; the engine
//! never panics on untrusted input.
//!
//! [`crate::server::RdxServer::run_batch`] is now a documented thin wrapper
//! over these primitives: submit all, step until idle, take all outcomes.

use crate::admission::{AdmissionController, AdmissionDecision};
use crate::cache::{CacheStats, ClusterCache, ClusterKey};
use crate::registry::{Catalog, RelationId};
use crate::scheduler::ChunkScheduler;
use crate::server::{QueryOutcome, QueryResult, QueryStats, ServeConfig, ServerRequest};
use rdx_cache::CacheParams;
use rdx_core::budget::MemoryBudget;
use rdx_core::error::{RdxError, Side};
use rdx_core::strategy::adapt::{FeedbackSource, MissCountFeedback, WallClockFeedback};
use rdx_core::strategy::planner::{
    plan_by_cost_with_threads, streaming_bytes_per_row, StreamingPlan,
};
use rdx_core::strategy::{DsmPostProjection, MaterializeSink, PhaseTimings, RowChunkSink};
use rdx_dsm::DsmRelation;
use rdx_exec::{DsmPipelineRun, ExecPolicy, ProjectionPipeline};
use rdx_obs::{EventKind, Obs, ObsConfig, QueryId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Process-wide ticket counter: ids are unique across every engine in the
/// process, so a ticket accidentally polled against the wrong session can
/// never alias (and silently consume) another session's outcome — it
/// reports [`RdxError::UnknownTicket`] instead.
static NEXT_TICKET: AtomicU64 = AtomicU64::new(0);

/// Opaque handle to a submitted query: the engine's promise to eventually
/// park an outcome under this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TicketId(pub(crate) u64);

impl TicketId {
    /// The raw ticket number (what [`RdxError::UnknownTicket`] carries).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TicketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ticket#{}", self.0)
    }
}

/// Where a ticket currently is in its state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketStatus {
    /// Waiting for admission (FIFO; `position` 0 is the queue head).
    Queued {
        /// Tickets ahead of this one.
        position: usize,
    },
    /// Admitted and progressing chunk by chunk.
    Running {
        /// Chunks emitted so far.
        chunks: usize,
        /// Result rows emitted so far.
        rows: usize,
    },
    /// Complete; the outcome is parked until [`QueryEngine::take_outcome`].
    Finished,
}

/// What one [`QueryEngine::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStep {
    /// One chunk of `ticket` ran, emitting `rows` result rows.
    Chunk {
        /// The query that progressed.
        ticket: TicketId,
        /// Rows in the emitted chunk.
        rows: usize,
    },
    /// `ticket` completed; its outcome is parked for
    /// [`QueryEngine::take_outcome`].
    Finished {
        /// The query that completed.
        ticket: TicketId,
    },
    /// Nothing queued and nothing running: the engine is drained.
    Idle,
}

/// Cumulative engine counters since the last [`QueryEngine::reset_stats`].
///
/// Ticket-granular callers (who never call `reset_stats`) see these as
/// engine-lifetime totals — the aggregate view `BatchStats` used to be the
/// only source of; the legacy batch wrapper resets them per batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Peak over time of `Σ` active queries' planned working-set bounds.
    pub peak_concurrent_bytes: usize,
    /// Most queries in flight at once.
    pub peak_concurrency: usize,
    /// Total chunks dispatched.
    pub chunks_dispatched: u64,
    /// Queries that started on pooled (already warmed) chunk scratch.
    pub scratch_reuses: u64,
    /// Resolved queries whose prepared prefix came from the
    /// clustered-index cache.
    pub cache_hits: u64,
    /// Resolved queries that had to build their prepared prefix.
    pub cache_misses: u64,
    /// Queries granted a budget share and resolved (ticket admissions plus
    /// direct `resolve` calls).
    pub admissions: u64,
    /// Queries refused with a typed error (validation, admission or budget
    /// failures, on any path).
    pub rejections: u64,
    /// Admissions granted less than the fair share (tighter chunking).
    pub replans: u64,
    /// Mid-flight re-splits fired by per-query adaptive controllers —
    /// counted apart from [`EngineStats::replans`], which is an *admission*
    /// decision: an adaptive query re-plans after it started running.
    pub adaptive_replans: u64,
}

/// A validated, planned, cache-resolved query, ready to stream chunks —
/// what the single planner entry [`QueryEngine::resolve`] returns.
///
/// Every execution mode of the front door funnels through this value: a
/// one-shot `run()` steps it to completion into a
/// [`MaterializeSink`], a `stream(sink)` into the caller's sink, and a
/// submitted ticket is stepped by the engine's own scheduler — so all modes
/// exercise one code path and stay byte-identical by construction.
pub struct ResolvedQuery {
    run: DsmPipelineRun<'static>,
    stats: QueryStats,
    started: Instant,
}

impl ResolvedQuery {
    /// The projection codes the planner chose (or the request pinned).
    pub fn plan(&self) -> DsmPostProjection {
        self.stats.plan
    }

    /// The chunking this query streams under.
    pub fn streaming(&self) -> &StreamingPlan {
        self.run.streaming()
    }

    /// Whether the prepared prefix came from the clustered-index cache.
    pub fn cache_hit(&self) -> bool {
        self.stats.cache_hit
    }

    /// Emits the next chunk into `sink`; `None` once complete (see
    /// [`rdx_exec::PipelineRun::step`] for the begin/finish protocol).
    pub fn step(&mut self, sink: &mut dyn RowChunkSink) -> Option<usize> {
        self.run.step(sink)
    }

    /// Steps the query to completion.
    pub fn run_to_completion(&mut self, sink: &mut dyn RowChunkSink) {
        self.run.run_to_completion(sink)
    }

    /// `true` once the sink has been finished.
    pub fn is_done(&self) -> bool {
        self.run.is_done()
    }

    /// Swaps the feedback source of an adaptive query (no-op when the
    /// request did not enable adaptation) — how a deterministic harness
    /// replaces the production wall-clock source with a scripted timing
    /// sequence on an engine-resolved run.
    pub fn replace_feedback(
        &mut self,
        source: Box<dyn rdx_core::strategy::adapt::FeedbackSource + Send>,
    ) {
        self.run.replace_feedback(source)
    }
}

/// Mirror instruments the engine records into when observability is on —
/// handles resolved **once** at construction, so the per-decision cost is
/// a few relaxed atomics, never a registry lookup.
struct EngineObs {
    cache_hits: rdx_obs::Counter,
    cache_misses: rdx_obs::Counter,
    admissions: rdx_obs::Counter,
    rejections: rdx_obs::Counter,
    replans: rdx_obs::Counter,
    adaptive_replans: rdx_obs::Counter,
    chunks_dispatched: rdx_obs::Counter,
    in_flight: rdx_obs::Gauge,
    queued: rdx_obs::Gauge,
    queue_wait_ns: rdx_obs::Histogram,
    service_ns: rdx_obs::Histogram,
}

impl EngineObs {
    fn new(obs: &Obs) -> Option<Box<EngineObs>> {
        let metrics = obs.metrics()?;
        Some(Box::new(EngineObs {
            cache_hits: metrics.counter("engine.cache_hits"),
            cache_misses: metrics.counter("engine.cache_misses"),
            admissions: metrics.counter("engine.admissions"),
            rejections: metrics.counter("engine.rejections"),
            replans: metrics.counter("engine.replans"),
            adaptive_replans: metrics.counter("engine.adaptive_replans"),
            chunks_dispatched: metrics.counter("engine.chunks_dispatched"),
            in_flight: metrics.gauge("engine.in_flight"),
            queued: metrics.gauge("engine.queued"),
            queue_wait_ns: metrics.histogram("engine.queue_wait_ns"),
            service_ns: metrics.histogram("engine.service_ns"),
        }))
    }
}

/// The static label a `Reject` trace event carries for `e`.
fn reject_reason(e: &RdxError) -> &'static str {
    match e {
        RdxError::Budget(_) => "budget",
        RdxError::UnknownRelation { .. } => "unknown_relation",
        RdxError::TooManyColumns { .. } => "too_many_columns",
        RdxError::SelectionMismatch { .. } => "selection_mismatch",
        RdxError::UnknownTicket { .. } => "unknown_ticket",
    }
}

/// One queued (submitted, not yet admitted) ticket.
struct Pending {
    ticket: TicketId,
    query: QueryId,
    request: ServerRequest,
    submitted_at: Instant,
}

/// One admitted, in-flight ticket.
struct Running {
    ticket: TicketId,
    request: ServerRequest,
    rq: ResolvedQuery,
    sink: MaterializeSink,
    /// The admission grant (released on completion; may exceed the
    /// effective budget when a hint tightened it).
    share: MemoryBudget,
}

/// The persistent, ticket-granular serving core.
///
/// ```
/// use rdx_serve::{QueryEngine, EngineStep, ServeConfig, ServerRequest, TicketStatus};
/// use rdx_core::strategy::QuerySpec;
/// use rdx_workload::JoinWorkloadBuilder;
///
/// let mut engine = QueryEngine::new(ServeConfig::default());
/// let w = JoinWorkloadBuilder::equal(1_000, 1).build();
/// let larger = engine.register(w.larger.clone());
/// let smaller = engine.register(w.smaller.clone());
/// let ticket = engine.submit(ServerRequest::new(larger, smaller, QuerySpec::symmetric(1)));
/// while engine.step() != EngineStep::Idle {}
/// assert_eq!(engine.status(ticket), Some(TicketStatus::Finished));
/// let outcome = engine.take_outcome(ticket).unwrap();
/// assert_eq!(outcome.outcome.unwrap().stats.rows, w.expected_matches);
/// ```
pub struct QueryEngine {
    config: ServeConfig,
    shared_params: CacheParams,
    catalog: Catalog,
    cache: ClusterCache,
    scratch_pool: Vec<rdx_exec::ChunkScratch>,
    admission: AdmissionController,
    scheduler: ChunkScheduler,
    queue: VecDeque<Pending>,
    running: Vec<Running>,
    finished: HashMap<u64, QueryOutcome>,
    stats: EngineStats,
    obs: Obs,
    engine_obs: Option<Box<EngineObs>>,
}

impl QueryEngine {
    /// An engine with an empty catalog and a cold cache.
    ///
    /// # Panics
    /// Panics if `config.max_concurrent == 0`.
    pub fn new(config: ServeConfig) -> Self {
        assert!(config.max_concurrent >= 1, "must serve at least one query");
        // Every per-query plan is priced and clustered against a 1/k share
        // of the cache — conservative when fewer queries are active, but it
        // keeps cluster specs (and so cache keys) stable across admission
        // states.
        let shares = config.plan_shares.unwrap_or(config.max_concurrent).max(1);
        let shared_params = config.params.per_query_share(shares);
        let obs = if config.observability {
            Obs::enabled(ObsConfig::default())
        } else {
            Obs::disabled()
        };
        let engine_obs = EngineObs::new(&obs);
        QueryEngine {
            shared_params,
            catalog: Catalog::new(),
            cache: ClusterCache::new(config.cache_bytes),
            scratch_pool: Vec::new(),
            admission: AdmissionController::new(config.global_budget, config.max_concurrent),
            scheduler: ChunkScheduler::new(config.fairness),
            queue: VecDeque::new(),
            running: Vec::new(),
            finished: HashMap::new(),
            stats: EngineStats::default(),
            obs,
            engine_obs,
            config,
        }
    }

    /// The engine's observability handle (disabled unless
    /// [`ServeConfig::observability`] was set) — where the `rdx-api`
    /// `Session` takes metrics and trace snapshots from.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Registers a relation for querying.
    pub fn register(&mut self, relation: DsmRelation) -> RelationId {
        self.catalog.register(relation)
    }

    /// Registers an already-shared relation without copying it.
    pub fn register_arc(&mut self, relation: Arc<DsmRelation>) -> RelationId {
        self.catalog.register_arc(relation)
    }

    /// The catalog of registered relations.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The configuration this engine runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Clustered-index cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The per-query cache share plans are priced against.
    pub fn shared_params(&self) -> &CacheParams {
        &self.shared_params
    }

    /// Tickets waiting for admission.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Tickets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.running.len()
    }

    /// `true` when nothing is queued or running (finished outcomes may
    /// still be parked).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty()
    }

    /// Cumulative counters since the last [`QueryEngine::reset_stats`].
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Resets the cumulative counters (the batch wrapper calls this so
    /// [`crate::BatchStats`] keeps its per-batch semantics).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Submits a query, returning its ticket **without blocking**: the call
    /// never runs a chunk, so it is safe between chunk steps of any
    /// in-flight query.  Validation failures park an `Err` outcome
    /// immediately (an invalid request never occupies a queue slot).
    pub fn submit(&mut self, request: ServerRequest) -> TicketId {
        let ticket = TicketId(NEXT_TICKET.fetch_add(1, Ordering::Relaxed));
        let query = QueryId::next();
        self.obs.record(query, EventKind::Submit);
        match validate(&self.catalog, &request) {
            Ok(()) => {
                self.queue.push_back(Pending {
                    ticket,
                    query,
                    request,
                    submitted_at: Instant::now(),
                });
                if let Some(eo) = &self.engine_obs {
                    eo.queued.set(self.queue.len() as i64);
                }
            }
            Err(e) => {
                self.reject(query, &e);
                self.finished.insert(
                    ticket.0,
                    QueryOutcome {
                        request,
                        outcome: Err(e),
                    },
                );
            }
        }
        ticket
    }

    /// Counts a refusal and records its trace event.
    fn reject(&mut self, query: QueryId, e: &RdxError) {
        self.stats.rejections += 1;
        self.obs.record(
            query,
            EventKind::Reject {
                reason: reject_reason(e),
            },
        );
        if let Some(eo) = &self.engine_obs {
            eo.rejections.inc();
        }
    }

    /// Where `ticket` is in its state machine, or `None` for a ticket this
    /// engine never issued (or whose outcome was already taken).
    pub fn status(&self, ticket: TicketId) -> Option<TicketStatus> {
        if let Some(position) = self.queue.iter().position(|p| p.ticket == ticket) {
            return Some(TicketStatus::Queued { position });
        }
        if let Some(r) = self.running.iter().find(|r| r.ticket == ticket) {
            let s = r.rq.run.run_stats();
            return Some(TicketStatus::Running {
                chunks: s.chunks_emitted,
                rows: s.rows_emitted,
            });
        }
        if self.finished.contains_key(&ticket.0) {
            return Some(TicketStatus::Finished);
        }
        None
    }

    /// Claims a finished ticket's outcome.  Each outcome can be taken
    /// exactly once; `None` for unknown, already-taken, or still-unfinished
    /// tickets (check [`QueryEngine::status`] to tell these apart).
    pub fn take_outcome(&mut self, ticket: TicketId) -> Option<QueryOutcome> {
        self.finished.remove(&ticket.0)
    }

    /// Pumps the engine by one scheduler decision: admit from the queue
    /// head while budget and concurrency slots allow, then run **one chunk
    /// of one query** under the fairness policy.  Returns what happened;
    /// [`EngineStep::Idle`] means the engine is drained.
    pub fn step(&mut self) -> EngineStep {
        self.admit_from_queue();
        if let Some(eo) = &self.engine_obs {
            eo.in_flight.set(self.running.len() as i64);
            eo.queued.set(self.queue.len() as i64);
        }

        self.stats.peak_concurrency = self.stats.peak_concurrency.max(self.running.len());
        let concurrent_bytes: usize = self
            .running
            .iter()
            .map(|r| r.rq.run.streaming().max_working_set_bytes())
            .sum();
        self.stats.peak_concurrent_bytes = self.stats.peak_concurrent_bytes.max(concurrent_bytes);
        if self.config.global_budget.is_bounded() {
            debug_assert!(concurrent_bytes <= self.config.global_budget.limit_bytes());
        }

        // One chunk of one query, per the fairness policy.
        let Some(id) = self.scheduler.dispatch() else {
            debug_assert!(self.queue.is_empty(), "queued work with nothing admitted");
            return EngineStep::Idle;
        };
        let pos = self
            .running
            .iter()
            .position(|r| r.ticket.0 as usize == id)
            .expect("scheduled ticket vanished");
        let running = &mut self.running[pos];
        if let Some(rows) = running.rq.run.step(&mut running.sink) {
            self.stats.chunks_dispatched += 1;
            if let Some(eo) = &self.engine_obs {
                eo.chunks_dispatched.inc();
            }
            EngineStep::Chunk {
                ticket: running.ticket,
                rows,
            }
        } else {
            // Completed: release the grant, free the slot, park the outcome.
            self.scheduler.remove(id);
            self.admission.release(running.share);
            let r = self.running.swap_remove(pos);
            let ticket = r.ticket;
            let (rq, sink) = (r.rq, r.sink);
            let stats = self.retire(rq);
            self.finished.insert(
                ticket.0,
                QueryOutcome {
                    request: r.request,
                    outcome: Ok(QueryResult {
                        result: sink.into_result(),
                        stats,
                    }),
                },
            );
            EngineStep::Finished { ticket }
        }
    }

    /// **The single planner entry** of the front door: validates `request`
    /// against the catalog, checks `budget` can hold one resident result
    /// row, chooses the projection codes (cost-based at the shared cache
    /// share unless the request pinned them), resolves the prepared prefix
    /// through the clustered-index cache, warms the run from the scratch
    /// pool, and prices its per-chunk cost for the stride scheduler.
    ///
    /// Every execution mode — one-shot `run`, `stream`, and submitted
    /// tickets — goes through this one function, which is what makes them
    /// byte-identical by construction.
    pub fn resolve(
        &mut self,
        request: &ServerRequest,
        budget: MemoryBudget,
    ) -> Result<ResolvedQuery, RdxError> {
        // Direct runs skip the queue: their lifecycle is submit → admit
        // (zero wait) → cache lookup → chunks → done, same shape as a
        // ticket's.
        let query = QueryId::next();
        self.obs.record(query, EventKind::Submit);
        match self.resolve_with(request, budget, query, 0) {
            Ok(rq) => Ok(rq),
            Err(e) => {
                self.reject(query, &e);
                Err(e)
            }
        }
    }

    /// [`QueryEngine::resolve`] under an already-minted query id and a
    /// known queue wait — the shared tail of the direct and ticket paths.
    fn resolve_with(
        &mut self,
        request: &ServerRequest,
        budget: MemoryBudget,
        query: QueryId,
        queue_wait_ns: u64,
    ) -> Result<ResolvedQuery, RdxError> {
        validate(&self.catalog, request)?;
        budget.check_one_row(streaming_bytes_per_row(&request.spec))?;
        self.stats.admissions += 1;
        self.obs.record(
            query,
            EventKind::Admit {
                share_bytes: budget.limit_bytes(),
                queue_wait_ns,
            },
        );
        if let Some(eo) = &self.engine_obs {
            eo.admissions.inc();
            eo.queue_wait_ns.record(queue_wait_ns);
        }
        let larger = self.catalog.get_arc(request.larger).expect("validated");
        let smaller = self.catalog.get_arc(request.smaller).expect("validated");
        let threads = request
            .threads_hint
            .unwrap_or(self.config.threads_per_query);
        let policy = ExecPolicy::with_threads(threads).budget(budget);
        let shared_params = &self.shared_params;
        let plan = request.codes.unwrap_or_else(|| {
            plan_by_cost_with_threads(
                &larger,
                &smaller,
                &request.spec,
                shared_params,
                policy.worker_threads(),
            )
        });
        // Derived by the same function the prepared prefix itself uses, so
        // the cache key can never drift from what it names.
        let cluster = rdx_exec::dsm_cluster_spec(smaller.cardinality(), shared_params);
        let key = ClusterKey {
            larger: request.larger,
            smaller: request.smaller,
            plan,
            cluster,
        };
        let pipeline = ProjectionPipeline::new(plan);
        let (prepared, cache_hit) = self.cache.get_or_prepare(key, || {
            pipeline.prepare(&larger, &smaller, shared_params, &policy)
        });
        self.obs
            .record(query, EventKind::CacheLookup { hit: cache_hit });
        if cache_hit {
            self.stats.cache_hits += 1;
        } else {
            self.stats.cache_misses += 1;
        }
        if let Some(eo) = &self.engine_obs {
            if cache_hit {
                eo.cache_hits.inc();
            } else {
                eo.cache_misses.inc();
            }
        }
        let mut run = DsmPipelineRun::over_dsm_arc(
            prepared,
            larger,
            smaller.clone(),
            &request.spec,
            shared_params,
            &policy,
        );
        // One pricing rule for everyone: the scheduler's stride weight, the
        // chunk loop's observed-vs-predicted recording, and the adaptive
        // controller all read the same per-chunk prediction.
        let predicted_chunk_ns = run.predicted_chunk_ns(shared_params);
        let predicted_chunk_cost_ms = predicted_chunk_ns as f64 / 1e6;
        run.attach_obs(&self.obs, query, predicted_chunk_ns);
        if request.profiled || self.config.profiled {
            run.attach_profile(&self.obs, query, shared_params);
        }
        if let Some(policy) = request.adaptive {
            // A profiled adaptive query reacts to simulated cache pressure —
            // deterministic stall time from the miss-count mailbox — instead
            // of wall-clock.  Falls back to wall-clock when profiling did
            // not arm (observability off).
            let source: Box<dyn FeedbackSource + Send> = match run.profile_shared() {
                Some(shared) => Box::new(MissCountFeedback::new(shared)),
                None => Box::new(WallClockFeedback),
            };
            run.attach_adaptive(policy, source, shared_params);
        }
        // Warm start: hand down scratch harvested from an earlier query.
        let mut scratch_reused = false;
        if let Some(scratch) = self.scratch_pool.pop() {
            run.attach_scratch(scratch);
            scratch_reused = true;
            self.stats.scratch_reuses += 1;
        }
        Ok(ResolvedQuery {
            run,
            stats: QueryStats {
                query_id: query.raw(),
                plan,
                cache_hit,
                scratch_reused,
                share_bytes: budget.limit_bytes(),
                replanned: false,
                chunks: 0,
                rows: 0,
                peak_chunk_bytes: 0,
                adaptive_replans: 0,
                predicted_chunk_cost_ms,
                timings: PhaseTimings::default(),
                wait: Duration::ZERO,
                service: Duration::ZERO,
            },
            started: Instant::now(),
        })
    }

    /// [`QueryEngine::resolve`] with the direct-execution budget rule: the
    /// *uncommitted residual* of the global budget, tightened by the
    /// request's own hint if any.  In-flight tickets keep their admission
    /// grants (their parked working buffers stay resident between chunk
    /// steps), so capping a direct run at the residual preserves the
    /// serving layer's load-bearing invariant — `Σ resident working sets ≤
    /// global` — even when `run`/`stream` calls interleave with tickets on
    /// one session.  When every byte is granted out, the direct run is
    /// refused with a typed [`RdxError::Budget`] instead of over-committing.
    pub fn resolve_direct(&mut self, request: &ServerRequest) -> Result<ResolvedQuery, RdxError> {
        let residual = self.admission.residual().map_err(RdxError::Budget)?;
        let budget = match request.budget_hint {
            Some(hint) if hint.limit_bytes() < residual.limit_bytes() => hint,
            _ => residual,
        };
        self.resolve(request, budget)
    }

    /// Retires a resolved query: harvests its warmed chunk scratch back
    /// into the pool and returns the finalised statistics.  The ticket path
    /// calls this on completion; direct `run`/`stream` callers call it
    /// after `run_to_completion`.
    pub fn retire(&mut self, mut rq: ResolvedQuery) -> QueryStats {
        if self.scratch_pool.len() < self.config.max_concurrent {
            self.scratch_pool.push(rq.run.take_scratch());
        }
        // A cache-hit run never paid the prefix build; fold those timings in
        // only when this query actually built it.
        let run_stats = if rq.stats.cache_hit {
            rq.run.run_stats()
        } else {
            rq.run.stats()
        };
        rq.stats.chunks = run_stats.chunks_emitted;
        rq.stats.rows = run_stats.rows_emitted;
        rq.stats.peak_chunk_bytes = run_stats.peak_chunk_bytes;
        rq.stats.adaptive_replans = run_stats.adaptive_replans;
        self.stats.adaptive_replans += run_stats.adaptive_replans as u64;
        if run_stats.adaptive_replans > 0 {
            if let Some(eo) = &self.engine_obs {
                eo.adaptive_replans.add(run_stats.adaptive_replans as u64);
            }
        }
        rq.stats.timings = run_stats.timings;
        rq.stats.service = rq.started.elapsed();
        let service_ns = rq.stats.service.as_nanos() as u64;
        self.obs.record(
            QueryId(rq.stats.query_id),
            EventKind::Done {
                rows: rq.stats.rows as u64,
                wall_ns: service_ns,
            },
        );
        if let Some(eo) = &self.engine_obs {
            eo.service_ns.record(service_ns);
        }
        rq.stats
    }

    /// Admits from the queue head while budget and slots allow (FIFO —
    /// admission never skips the head, so arrival order bounds waiting).
    fn admit_from_queue(&mut self) {
        while let Some(front) = self.queue.front() {
            let request = front.request;
            let effective_row_bytes = streaming_bytes_per_row(&request.spec);
            // A hint below the one-row floor can never run; reject before
            // it holds up the queue.
            if let Some(hint) = request.budget_hint {
                if let Err(e) = hint.check_one_row(effective_row_bytes) {
                    let p = self.queue.pop_front().expect("peeked");
                    let err = RdxError::Budget(e);
                    self.reject(p.query, &err);
                    self.finished.insert(
                        p.ticket.0,
                        QueryOutcome {
                            request,
                            outcome: Err(err),
                        },
                    );
                    continue;
                }
            }
            match self.admission.try_admit(effective_row_bytes) {
                AdmissionDecision::Queue => break,
                AdmissionDecision::Reject(e) => {
                    let p = self.queue.pop_front().expect("peeked");
                    let err = RdxError::Budget(e);
                    self.reject(p.query, &err);
                    self.finished.insert(
                        p.ticket.0,
                        QueryOutcome {
                            request,
                            outcome: Err(err),
                        },
                    );
                }
                AdmissionDecision::Admit { share, replanned } => {
                    let p = self.queue.pop_front().expect("peeked");
                    // The effective budget: the admission grant, tightened
                    // by the request's own hint if any (a hint can only
                    // shrink the share, never grow it).
                    let effective = match request.budget_hint {
                        Some(hint) if hint.limit_bytes() < share.limit_bytes() => hint,
                        _ => share,
                    };
                    let wait = p.submitted_at.elapsed();
                    match self.resolve_with(&request, effective, p.query, wait.as_nanos() as u64) {
                        Ok(mut rq) => {
                            rq.stats.replanned = replanned;
                            rq.stats.wait = wait;
                            if replanned {
                                self.stats.replans += 1;
                                if let Some(eo) = &self.engine_obs {
                                    eo.replans.inc();
                                }
                            }
                            self.scheduler
                                .add(p.ticket.0 as usize, rq.stats.predicted_chunk_cost_ms);
                            self.running.push(Running {
                                ticket: p.ticket,
                                request,
                                rq,
                                sink: MaterializeSink::new(),
                                share,
                            });
                        }
                        Err(e) => {
                            self.admission.release(share);
                            self.reject(p.query, &e);
                            self.finished.insert(
                                p.ticket.0,
                                QueryOutcome {
                                    request,
                                    outcome: Err(e),
                                },
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Request validation against the catalog, in workspace-wide error terms.
fn validate(catalog: &Catalog, request: &ServerRequest) -> Result<(), RdxError> {
    let larger = catalog
        .get(request.larger)
        .ok_or(RdxError::UnknownRelation {
            id: request.larger.raw(),
        })?;
    let smaller = catalog
        .get(request.smaller)
        .ok_or(RdxError::UnknownRelation {
            id: request.smaller.raw(),
        })?;
    if request.spec.project_larger > larger.width() {
        return Err(RdxError::TooManyColumns {
            side: Side::Larger,
            requested: request.spec.project_larger,
            available: larger.width(),
        });
    }
    if request.spec.project_smaller > smaller.width() {
        return Err(RdxError::TooManyColumns {
            side: Side::Smaller,
            requested: request.spec.project_smaller,
            available: smaller.width(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_core::budget::BudgetError;
    use rdx_core::strategy::QuerySpec;
    use rdx_dsm::ResultRelation;
    use rdx_workload::JoinWorkloadBuilder;

    fn engine(budget: MemoryBudget) -> QueryEngine {
        QueryEngine::new(ServeConfig {
            params: CacheParams::tiny_for_tests(),
            global_budget: budget,
            max_concurrent: 2,
            threads_per_query: 1,
            cache_bytes: 1 << 20,
            fairness: crate::FairnessPolicy::CostWeighted,
            plan_shares: None,
            observability: false,
            profiled: false,
        })
    }

    fn columns(result: &ResultRelation) -> Vec<Vec<i32>> {
        result
            .columns()
            .iter()
            .map(|c| c.as_slice().to_vec())
            .collect()
    }

    #[test]
    fn ticket_walks_queued_running_finished() {
        let w = JoinWorkloadBuilder::equal(1_500, 1).seed(3).build();
        let mut engine = engine(MemoryBudget::bytes(64));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(1);
        let ticket = engine.submit(ServerRequest::new(larger, smaller, spec));
        assert_eq!(
            engine.status(ticket),
            Some(TicketStatus::Queued { position: 0 })
        );
        // First step admits and runs one chunk.
        assert!(matches!(
            engine.step(),
            EngineStep::Chunk { ticket: t, rows } if t == ticket && rows > 0
        ));
        assert!(matches!(
            engine.status(ticket),
            Some(TicketStatus::Running { chunks: 1, .. })
        ));
        while engine.step() != EngineStep::Idle {}
        assert_eq!(engine.status(ticket), Some(TicketStatus::Finished));
        let outcome = engine.take_outcome(ticket).expect("outcome parked");
        let q = outcome.outcome.expect("query served");
        assert_eq!(q.stats.rows, w.expected_matches);
        assert!(q.stats.chunks > 1);
        // Taken exactly once.
        assert!(engine.take_outcome(ticket).is_none());
        assert_eq!(engine.status(ticket), None);
    }

    #[test]
    fn submit_between_steps_joins_the_running_mix() {
        let w = JoinWorkloadBuilder::equal(2_000, 1).seed(5).build();
        let mut engine = engine(MemoryBudget::bytes(4 * 1024));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(1);
        let a = engine.submit(ServerRequest::new(larger, smaller, spec));
        // Step a few chunks of A alone…
        for _ in 0..3 {
            assert!(matches!(engine.step(), EngineStep::Chunk { .. }));
        }
        // …then submit B *between chunk steps of the in-flight A* — the
        // async-front enabler.
        let b = engine.submit(ServerRequest::new(larger, smaller, spec));
        assert!(matches!(
            engine.status(a),
            Some(TicketStatus::Running { .. })
        ));
        while engine.step() != EngineStep::Idle {}
        let ra = engine.take_outcome(a).unwrap().outcome.unwrap();
        let rb = engine.take_outcome(b).unwrap().outcome.unwrap();
        // Interleaving is invisible in the results.
        assert_eq!(columns(&ra.result), columns(&rb.result));
        assert_eq!(ra.stats.rows, w.expected_matches);
        assert!(engine.stats().peak_concurrency >= 2);
    }

    #[test]
    fn invalid_submissions_finish_immediately_with_typed_errors() {
        let w = JoinWorkloadBuilder::equal(300, 1).seed(7).build();
        let mut engine = engine(MemoryBudget::bytes(4 * 1024));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let ghost = engine.submit(ServerRequest::new(
            RelationId(99),
            smaller,
            QuerySpec::symmetric(1),
        ));
        assert_eq!(engine.status(ghost), Some(TicketStatus::Finished));
        assert_eq!(
            engine.take_outcome(ghost).unwrap().outcome.unwrap_err(),
            RdxError::UnknownRelation { id: 99 }
        );
        // A hint below the one-row floor fails at admission time.
        let starved = engine.submit(
            ServerRequest::new(larger, smaller, QuerySpec::symmetric(1))
                .with_budget_hint(MemoryBudget::bytes(1)),
        );
        while engine.step() != EngineStep::Idle {}
        assert!(matches!(
            engine.take_outcome(starved).unwrap().outcome.unwrap_err(),
            RdxError::Budget(BudgetError::BelowOneRow { .. })
        ));
        // Unknown tickets report None, not a panic.  (u64::MAX is never
        // issued: the process-wide counter counts up from zero.)
        assert_eq!(engine.status(TicketId(u64::MAX)), None);
        assert!(engine.take_outcome(TicketId(u64::MAX)).is_none());
    }

    #[test]
    fn resolve_is_one_entry_for_direct_and_ticket_paths() {
        let w = JoinWorkloadBuilder::equal(1_200, 2).seed(11).build();
        let mut engine = engine(MemoryBudget::bytes(8 * 1024));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let request = ServerRequest::new(larger, smaller, QuerySpec::symmetric(2));

        // Direct: resolve → run_to_completion → retire.
        let mut rq = engine.resolve_direct(&request).expect("resolves");
        assert!(!rq.cache_hit());
        let mut sink = MaterializeSink::new();
        rq.run_to_completion(&mut sink);
        assert!(rq.is_done());
        let stats = engine.retire(rq);
        assert_eq!(stats.rows, w.expected_matches);
        let direct = sink.into_result();

        // Ticket: same request through the scheduler; the prefix now comes
        // from the cache the direct run warmed.
        let ticket = engine.submit(request);
        while engine.step() != EngineStep::Idle {}
        let q = engine.take_outcome(ticket).unwrap().outcome.unwrap();
        assert!(q.stats.cache_hit);
        assert_eq!(columns(&direct), columns(&q.result));

        // Pinned codes override the planner through the same entry.
        let pinned = engine
            .resolve_direct(&request.with_codes(q.stats.plan))
            .unwrap();
        assert_eq!(pinned.plan(), q.stats.plan);
        engine.retire(pinned);
    }

    #[test]
    fn direct_runs_cannot_overcommit_past_in_flight_grants() {
        let w = JoinWorkloadBuilder::equal(1_000, 1).seed(13).build();
        let mut engine = engine(MemoryBudget::bytes(4_096)); // max_concurrent = 2
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let request = ServerRequest::new(larger, smaller, QuerySpec::symmetric(1));

        // One ticket in flight holds its 2 KB fair share…
        engine.submit(request);
        assert!(matches!(engine.step(), EngineStep::Chunk { .. }));
        // …so a direct run is capped at the 2 KB residual, keeping
        // Σ resident working sets ≤ the 4 KB global budget.
        let rq = engine.resolve_direct(&request).expect("residual fits");
        assert_eq!(rq.stats.share_bytes, 2_048);
        engine.retire(rq);

        // With the whole budget granted out, a direct run is refused with a
        // typed error instead of over-committing.
        engine.submit(request);
        assert!(matches!(engine.step(), EngineStep::Chunk { .. }));
        assert_eq!(engine.in_flight(), 2);
        let err = match engine.resolve_direct(&request) {
            Err(e) => e,
            Ok(_) => panic!("fully committed budget must refuse direct runs"),
        };
        assert_eq!(err, RdxError::Budget(BudgetError::ZeroBytes));

        // Draining the tickets frees the budget again.
        while engine.step() != EngineStep::Idle {}
        let rq = engine.resolve_direct(&request).expect("budget released");
        assert_eq!(rq.stats.share_bytes, 4_096);
        engine.retire(rq);
    }
}
