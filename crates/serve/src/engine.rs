//! The **ticket-granular query engine**: the persistent core the whole
//! serving layer (and the `rdx-api` `Session` front door) runs on.
//!
//! PR 3's [`crate::server::RdxServer::run_batch`] was a synchronous
//! all-or-nothing call: admission, scheduling and chunk execution lived
//! inside one loop whose in-flight state borrowed the catalog, so there was
//! no API surface on which to accept a query while a batch was in flight.
//! This module factors that loop into a value with *open* edges:
//!
//! * [`QueryEngine::submit`] validates a request against the catalog and
//!   enqueues it, returning a non-blocking [`TicketId`] immediately — at any
//!   time, including between chunk steps of other in-flight queries (the
//!   async-front enabler the ROADMAP asks for);
//! * [`QueryEngine::step`] pumps exactly one scheduler decision: admit from
//!   the queue head while budget and slots allow, then run **one chunk of
//!   one query** under the stride-scheduling fairness policy — the same
//!   decision sequence the old batch loop made, now resumable from outside;
//! * [`QueryEngine::status`] / [`QueryEngine::take_outcome`] observe a
//!   ticket without blocking.
//!
//! ## The ticket state machine
//!
//! ```text
//! submit ──► Queued ──admit──► Running ──last chunk──► Finished ──take──► gone
//!    │                                                    ▲
//!    └── validation / admission failure ──────────────────┘  (outcome = Err)
//! ```
//!
//! A ticket moves strictly left to right.  `Queued` tickets wait in FIFO
//! order (admission never skips the queue head, so arrival order bounds
//! waiting); `Running` tickets are parked [`rdx_exec::PipelineRun`]s that
//! own `Arc` clones of their relations (never borrowing the catalog, which
//! is what lets the engine hold them across calls); `Finished` tickets park
//! their outcome — the materialised result or a typed
//! [`RdxError`] — until exactly one [`QueryEngine::take_outcome`] claims it.
//!
//! Everything fallible reports the workspace-wide [`RdxError`]; the engine
//! never panics on untrusted input.
//!
//! [`crate::server::RdxServer::run_batch`] is now a documented thin wrapper
//! over these primitives: submit all, step until idle, take all outcomes.

use crate::admission::{AdmissionController, AdmissionDecision};
use crate::cache::{CacheStats, ClusterCache, ClusterKey};
use crate::registry::{Catalog, RelationId};
use crate::scheduler::ChunkScheduler;
use crate::server::{QueryOutcome, QueryResult, QueryStats, ServeConfig, ServerRequest};
use crate::tenant::{TenantId, TenantRegistry, TenantStats};
use rdx_cache::CacheParams;
use rdx_core::budget::{BudgetError, MemoryBudget};
use rdx_core::error::{DeadlineError, RdxError, Side};
use rdx_core::fault::{FaultInjector, FaultPlan, RetryPolicy};
use rdx_core::strategy::adapt::{FeedbackSource, MissCountFeedback, WallClockFeedback};
use rdx_core::strategy::planner::{
    plan_by_cost_with_threads, plan_streaming, predict_streaming_cost, streaming_bytes_per_row,
    StreamingPlan,
};
use rdx_core::strategy::{DsmPostProjection, MaterializeSink, PhaseTimings, RowChunkSink};
use rdx_dsm::DsmRelation;
use rdx_exec::{DsmPipelineRun, ExecPolicy, ProjectionPipeline};
use rdx_obs::{EventKind, Obs, ObsConfig, QueryId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Process-wide ticket counter: ids are unique across every engine in the
/// process, so a ticket accidentally polled against the wrong session can
/// never alias (and silently consume) another session's outcome — it
/// reports [`RdxError::UnknownTicket`] instead.
static NEXT_TICKET: AtomicU64 = AtomicU64::new(0);

/// Opaque handle to a submitted query: the engine's promise to eventually
/// park an outcome under this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TicketId(pub(crate) u64);

impl TicketId {
    /// The raw ticket number (what [`RdxError::UnknownTicket`] carries).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TicketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ticket#{}", self.0)
    }
}

/// Where a ticket currently is in its state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketStatus {
    /// Waiting for admission (FIFO; `position` 0 is the queue head).
    Queued {
        /// Tickets ahead of this one.
        position: usize,
    },
    /// Admitted and progressing chunk by chunk.
    Running {
        /// Chunks emitted so far.
        chunks: usize,
        /// Result rows emitted so far.
        rows: usize,
    },
    /// Complete; the outcome is parked until [`QueryEngine::take_outcome`].
    Finished,
}

/// What one [`QueryEngine::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStep {
    /// One chunk of `ticket` ran, emitting `rows` result rows.
    Chunk {
        /// The query that progressed.
        ticket: TicketId,
        /// Rows in the emitted chunk.
        rows: usize,
    },
    /// `ticket` completed; its outcome is parked for
    /// [`QueryEngine::take_outcome`].
    Finished {
        /// The query that completed.
        ticket: TicketId,
    },
    /// Nothing was dispatchable this step, but work is still pending —
    /// queries parked for retry backoff, or a queue head waiting for
    /// budget freed by a teardown this same step.  The engine is **not**
    /// idle: keep stepping (each step advances the retry clock).
    Waiting,
    /// Nothing queued and nothing running: the engine is drained.
    Idle,
}

/// Cumulative engine counters since the last [`QueryEngine::reset_stats`].
///
/// Ticket-granular callers (who never call `reset_stats`) see these as
/// engine-lifetime totals — the aggregate view `BatchStats` used to be the
/// only source of; the legacy batch wrapper resets them per batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Peak over time of `Σ` active queries' planned working-set bounds.
    pub peak_concurrent_bytes: usize,
    /// Most queries in flight at once.
    pub peak_concurrency: usize,
    /// Total chunks dispatched.
    pub chunks_dispatched: u64,
    /// Queries that started on pooled (already warmed) chunk scratch.
    pub scratch_reuses: u64,
    /// Resolved queries whose prepared prefix came from the
    /// clustered-index cache.
    pub cache_hits: u64,
    /// Resolved queries that had to build their prepared prefix.
    pub cache_misses: u64,
    /// Queries granted a budget share and resolved (ticket admissions plus
    /// direct `resolve` calls).
    pub admissions: u64,
    /// Queries refused with a typed error (validation, admission or budget
    /// failures, on any path).
    pub rejections: u64,
    /// Admissions granted less than the fair share (tighter chunking).
    pub replans: u64,
    /// Mid-flight re-splits fired by per-query adaptive controllers —
    /// counted apart from [`EngineStats::replans`], which is an *admission*
    /// decision: an adaptive query re-plans after it started running.
    pub adaptive_replans: u64,
    /// Of [`EngineStats::rejections`]: refused because the budget could
    /// not admit them (load shedding).
    pub budget_rejects: u64,
    /// Of [`EngineStats::rejections`]: refused at admission because their
    /// deadline was infeasible at the granted share — the query never ran
    /// a chunk.
    pub deadline_rejects: u64,
    /// Queries torn down before completion — caller cancellations plus
    /// mid-flight deadline enforcement — with their grants reclaimed.
    pub cancellations: u64,
    /// Queries whose chunk crashed a morsel worker (the unwind was caught;
    /// only the owning run was poisoned).
    pub worker_panics: u64,
    /// Retry attempts re-queued under a request's
    /// [`rdx_core::fault::RetryPolicy`].
    pub retries: u64,
    /// Of [`EngineStats::rejections`]: refused at admission because the
    /// requesting tenant was over its [`crate::TenantQuota`] — checked
    /// before the global budget, so tenant bursts shed at their own cap
    /// without consuming shared-pool decisions.
    pub tenant_quota_rejects: u64,
}

/// A validated, planned, cache-resolved query, ready to stream chunks —
/// what the single planner entry [`QueryEngine::resolve`] returns.
///
/// Every execution mode of the front door funnels through this value: a
/// one-shot `run()` steps it to completion into a
/// [`MaterializeSink`], a `stream(sink)` into the caller's sink, and a
/// submitted ticket is stepped by the engine's own scheduler — so all modes
/// exercise one code path and stay byte-identical by construction.
pub struct ResolvedQuery {
    run: DsmPipelineRun<'static>,
    stats: QueryStats,
    started: Instant,
}

impl ResolvedQuery {
    /// The projection codes the planner chose (or the request pinned).
    pub fn plan(&self) -> DsmPostProjection {
        self.stats.plan
    }

    /// The chunking this query streams under.
    pub fn streaming(&self) -> &StreamingPlan {
        self.run.streaming()
    }

    /// Whether the prepared prefix came from the clustered-index cache.
    pub fn cache_hit(&self) -> bool {
        self.stats.cache_hit
    }

    /// Emits the next chunk into `sink`; `None` once complete (see
    /// [`rdx_exec::PipelineRun::step`] for the begin/finish protocol).
    pub fn step(&mut self, sink: &mut dyn RowChunkSink) -> Option<usize> {
        self.run.step(sink)
    }

    /// Steps the query to completion.
    pub fn run_to_completion(&mut self, sink: &mut dyn RowChunkSink) {
        self.run.run_to_completion(sink)
    }

    /// `true` once the sink has been finished.
    pub fn is_done(&self) -> bool {
        self.run.is_done()
    }

    /// Swaps the feedback source of an adaptive query (no-op when the
    /// request did not enable adaptation) — how a deterministic harness
    /// replaces the production wall-clock source with a scripted timing
    /// sequence on an engine-resolved run.
    pub fn replace_feedback(
        &mut self,
        source: Box<dyn rdx_core::strategy::adapt::FeedbackSource + Send>,
    ) {
        self.run.replace_feedback(source)
    }
}

/// Mirror instruments the engine records into when observability is on —
/// handles resolved **once** at construction, so the per-decision cost is
/// a few relaxed atomics, never a registry lookup.
struct EngineObs {
    cache_hits: rdx_obs::Counter,
    cache_misses: rdx_obs::Counter,
    admissions: rdx_obs::Counter,
    rejections: rdx_obs::Counter,
    replans: rdx_obs::Counter,
    adaptive_replans: rdx_obs::Counter,
    chunks_dispatched: rdx_obs::Counter,
    budget_rejects: rdx_obs::Counter,
    deadline_rejects: rdx_obs::Counter,
    cancellations: rdx_obs::Counter,
    worker_panics: rdx_obs::Counter,
    retries: rdx_obs::Counter,
    tenant_quota_rejects: rdx_obs::Counter,
    in_flight: rdx_obs::Gauge,
    queued: rdx_obs::Gauge,
    queue_wait_ns: rdx_obs::Histogram,
    service_ns: rdx_obs::Histogram,
}

impl EngineObs {
    fn new(obs: &Obs) -> Option<Box<EngineObs>> {
        let metrics = obs.metrics()?;
        Some(Box::new(EngineObs {
            cache_hits: metrics.counter("engine.cache_hits"),
            cache_misses: metrics.counter("engine.cache_misses"),
            admissions: metrics.counter("engine.admissions"),
            rejections: metrics.counter("engine.rejections"),
            replans: metrics.counter("engine.replans"),
            adaptive_replans: metrics.counter("engine.adaptive_replans"),
            chunks_dispatched: metrics.counter("engine.chunks_dispatched"),
            budget_rejects: metrics.counter("engine.budget_rejects"),
            deadline_rejects: metrics.counter("engine.deadline_rejects"),
            cancellations: metrics.counter("engine.cancellations"),
            worker_panics: metrics.counter("engine.worker_panics"),
            retries: metrics.counter("engine.retries"),
            tenant_quota_rejects: metrics.counter("engine.tenant_quota_rejects"),
            in_flight: metrics.gauge("engine.in_flight"),
            queued: metrics.gauge("engine.queued"),
            queue_wait_ns: metrics.histogram("engine.queue_wait_ns"),
            service_ns: metrics.histogram("engine.service_ns"),
        }))
    }
}

/// The static label a `Reject` trace event carries for `e`.
fn reject_reason(e: &RdxError) -> &'static str {
    match e {
        RdxError::Budget(_) => "budget",
        RdxError::UnknownRelation { .. } => "unknown_relation",
        RdxError::TooManyColumns { .. } => "too_many_columns",
        RdxError::SelectionMismatch { .. } => "selection_mismatch",
        RdxError::UnknownTicket { .. } => "unknown_ticket",
        RdxError::Deadline(_) => "deadline",
        RdxError::Cancelled => "cancelled",
        RdxError::WorkerPanicked { .. } => "worker_panic",
        RdxError::TenantQuota { .. } => "tenant_quota",
    }
}

/// One queued (submitted, not yet admitted) ticket.
struct Pending {
    ticket: TicketId,
    query: QueryId,
    request: ServerRequest,
    submitted_at: Instant,
    /// 0-based submission ordinal — how the fault injector addresses this
    /// query.  Stable across retries.
    ordinal: usize,
    /// Retry attempts already consumed (0 on first submission).
    attempt: u32,
}

/// One admitted, in-flight ticket.
struct Running {
    ticket: TicketId,
    request: ServerRequest,
    rq: ResolvedQuery,
    sink: MaterializeSink,
    /// The admission grant (released on completion; may exceed the
    /// effective budget when a hint tightened it).
    share: MemoryBudget,
    /// Submission ordinal (see [`Pending::ordinal`]).
    ordinal: usize,
    /// Retry attempts already consumed.
    attempt: u32,
    /// Service time charged against the deadline so far: wall-clock of
    /// this query's chunk steps (measured only when a deadline is armed)
    /// plus any injected artificial slowdowns.
    consumed_ns: u64,
    /// The tenant this admission was charged to (with the byte charge),
    /// released at every teardown alongside the admission grant.
    tenant: Option<(TenantId, usize)>,
}

/// One query parked between retry attempts, waiting out its backoff in
/// engine drive steps.
struct RetryParked {
    ticket: TicketId,
    query: QueryId,
    request: ServerRequest,
    submitted_at: Instant,
    ordinal: usize,
    /// Retry attempts consumed *including* the one this parking pays for.
    attempt: u32,
    /// The engine step count at which this query re-enters the queue.
    ready_at_step: u64,
}

/// The persistent, ticket-granular serving core.
///
/// ```
/// use rdx_serve::{QueryEngine, EngineStep, ServeConfig, ServerRequest, TicketStatus};
/// use rdx_core::strategy::QuerySpec;
/// use rdx_workload::JoinWorkloadBuilder;
///
/// let mut engine = QueryEngine::new(ServeConfig::default());
/// let w = JoinWorkloadBuilder::equal(1_000, 1).build();
/// let larger = engine.register(w.larger.clone());
/// let smaller = engine.register(w.smaller.clone());
/// let ticket = engine.submit(ServerRequest::new(larger, smaller, QuerySpec::symmetric(1)));
/// while engine.step() != EngineStep::Idle {}
/// assert_eq!(engine.status(ticket), Some(TicketStatus::Finished));
/// let outcome = engine.take_outcome(ticket).unwrap();
/// assert_eq!(outcome.outcome.unwrap().stats.rows, w.expected_matches);
/// ```
pub struct QueryEngine {
    config: ServeConfig,
    shared_params: CacheParams,
    catalog: Catalog,
    cache: ClusterCache,
    scratch_pool: Vec<rdx_exec::ChunkScratch>,
    admission: AdmissionController,
    scheduler: ChunkScheduler,
    queue: VecDeque<Pending>,
    running: Vec<Running>,
    retry_parked: Vec<RetryParked>,
    finished: HashMap<u64, QueryOutcome>,
    stats: EngineStats,
    obs: Obs,
    engine_obs: Option<Box<EngineObs>>,
    /// Monotone count of [`QueryEngine::step`] calls — the deterministic
    /// clock retry backoffs are measured against.
    step_count: u64,
    /// Next submission ordinal (fault-injection addressing).
    next_ordinal: usize,
    faults: FaultInjector,
    /// Interned tenants and their quota accounting (see [`crate::tenant`]).
    tenants: TenantRegistry,
}

impl QueryEngine {
    /// An engine with an empty catalog and a cold cache.
    ///
    /// # Panics
    /// Panics if `config.max_concurrent == 0`.
    pub fn new(config: ServeConfig) -> Self {
        assert!(config.max_concurrent >= 1, "must serve at least one query");
        // Every per-query plan is priced and clustered against a 1/k share
        // of the cache — conservative when fewer queries are active, but it
        // keeps cluster specs (and so cache keys) stable across admission
        // states.
        let shares = config.plan_shares.unwrap_or(config.max_concurrent).max(1);
        let shared_params = config.params.per_query_share(shares);
        let obs = if config.observability {
            Obs::enabled(ObsConfig::default())
        } else {
            Obs::disabled()
        };
        let engine_obs = EngineObs::new(&obs);
        QueryEngine {
            shared_params,
            catalog: Catalog::new(),
            cache: ClusterCache::new(config.cache_bytes),
            scratch_pool: Vec::new(),
            admission: AdmissionController::new(config.global_budget, config.max_concurrent),
            scheduler: ChunkScheduler::new(config.fairness),
            queue: VecDeque::new(),
            running: Vec::new(),
            retry_parked: Vec::new(),
            finished: HashMap::new(),
            stats: EngineStats::default(),
            obs,
            engine_obs,
            step_count: 0,
            next_ordinal: 0,
            faults: FaultInjector::new(FaultPlan::new()),
            tenants: TenantRegistry::new(config.tenant_quotas.clone()),
            config,
        }
    }

    /// Interns `name` as a tenant of this engine, resolving its
    /// [`crate::TenantQuota`] from [`ServeConfig::tenant_quotas`] and
    /// registering its `engine.tenant.<name>.*` instruments on first
    /// sight.  Idempotent: the same name always returns the same id.
    /// Requests carrying the returned [`TenantId`] (see
    /// [`ServerRequest::with_tenant`]) are quota-checked at admission.
    pub fn tenant_id(&mut self, name: &str) -> TenantId {
        self.tenants.intern(name, &self.obs)
    }

    /// The tenant's quota accounting, or `None` for an id this engine
    /// never interned.
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<TenantStats> {
        self.tenants.stats(tenant)
    }

    /// Returns a torn-down admission's tenant charge, if any.
    fn release_tenant(&mut self, charge: Option<(TenantId, usize)>) {
        if let Some((t, bytes)) = charge {
            self.tenants.release(t, bytes);
        }
    }

    /// Arms a deterministic [`FaultPlan`]: scripted worker panics,
    /// slowdowns, grant denials and cache evictions will fire at their
    /// pinned points (query submission ordinals × chunk steps) as the
    /// engine reaches them.  Replaces any previously armed plan.  Intended
    /// for tests and chaos drills; the default plan is empty.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.faults = FaultInjector::new(plan);
    }

    /// `Σ` bytes currently granted to admitted queries — the left side of
    /// the `Σ grants ≤ global` admission invariant, exposed so robustness
    /// tests can assert the invariant across cancellations and panics.
    pub fn committed_bytes(&self) -> usize {
        self.admission.committed_bytes()
    }

    /// The engine's observability handle (disabled unless
    /// [`ServeConfig::observability`] was set) — where the `rdx-api`
    /// `Session` takes metrics and trace snapshots from.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Registers a relation for querying.
    pub fn register(&mut self, relation: DsmRelation) -> RelationId {
        self.catalog.register(relation)
    }

    /// Registers an already-shared relation without copying it.
    pub fn register_arc(&mut self, relation: Arc<DsmRelation>) -> RelationId {
        self.catalog.register_arc(relation)
    }

    /// The catalog of registered relations.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The configuration this engine runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Clustered-index cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The per-query cache share plans are priced against.
    pub fn shared_params(&self) -> &CacheParams {
        &self.shared_params
    }

    /// Tickets waiting for admission.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Tickets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.running.len()
    }

    /// `true` when nothing is queued, running, or parked for retry
    /// (finished outcomes may still be parked).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty() && self.retry_parked.is_empty()
    }

    /// Cumulative counters since the last [`QueryEngine::reset_stats`].
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Resets the cumulative counters (the batch wrapper calls this so
    /// [`crate::BatchStats`] keeps its per-batch semantics).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Submits a query, returning its ticket **without blocking**: the call
    /// never runs a chunk, so it is safe between chunk steps of any
    /// in-flight query.  Validation failures park an `Err` outcome
    /// immediately (an invalid request never occupies a queue slot).
    pub fn submit(&mut self, request: ServerRequest) -> TicketId {
        let ticket = TicketId(NEXT_TICKET.fetch_add(1, Ordering::Relaxed));
        let query = QueryId::next();
        self.obs.record(query, EventKind::Submit);
        if let Some(t) = request.tenant {
            self.obs
                .record(query, EventKind::Tenant { tenant: t.raw() });
        }
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        match validate(&self.catalog, &request) {
            Ok(()) => {
                self.queue.push_back(Pending {
                    ticket,
                    query,
                    request,
                    submitted_at: Instant::now(),
                    ordinal,
                    attempt: 0,
                });
                if let Some(eo) = &self.engine_obs {
                    eo.queued.set(self.queue.len() as i64);
                }
            }
            Err(e) => {
                self.reject(query, &e);
                self.finished.insert(
                    ticket.0,
                    QueryOutcome {
                        request,
                        outcome: Err(e),
                    },
                );
            }
        }
        ticket
    }

    /// Counts a refusal (per-reason) and records its trace event.
    fn reject(&mut self, query: QueryId, e: &RdxError) {
        self.stats.rejections += 1;
        match e {
            RdxError::Budget(_) => {
                self.stats.budget_rejects += 1;
                if let Some(eo) = &self.engine_obs {
                    eo.budget_rejects.inc();
                }
            }
            RdxError::Deadline(_) => {
                self.stats.deadline_rejects += 1;
                if let Some(eo) = &self.engine_obs {
                    eo.deadline_rejects.inc();
                }
            }
            RdxError::TenantQuota { tenant, .. } => {
                self.stats.tenant_quota_rejects += 1;
                self.tenants.count_reject(TenantId(*tenant));
                if let Some(eo) = &self.engine_obs {
                    eo.tenant_quota_rejects.inc();
                }
            }
            _ => {}
        }
        self.obs.record(
            query,
            EventKind::Reject {
                reason: reject_reason(e),
            },
        );
        if let Some(eo) = &self.engine_obs {
            eo.rejections.inc();
        }
    }

    /// Counts a teardown (cancellation or deadline enforcement).
    fn count_cancellation(&mut self) {
        self.stats.cancellations += 1;
        if let Some(eo) = &self.engine_obs {
            eo.cancellations.inc();
        }
    }

    /// Where `ticket` is in its state machine, or `None` for a ticket this
    /// engine never issued (or whose outcome was already taken).
    pub fn status(&self, ticket: TicketId) -> Option<TicketStatus> {
        if let Some(position) = self.queue.iter().position(|p| p.ticket == ticket) {
            return Some(TicketStatus::Queued { position });
        }
        if let Some(r) = self.running.iter().find(|r| r.ticket == ticket) {
            let s = r.rq.run.run_stats();
            return Some(TicketStatus::Running {
                chunks: s.chunks_emitted,
                rows: s.rows_emitted,
            });
        }
        if let Some(idx) = self.retry_parked.iter().position(|p| p.ticket == ticket) {
            // Parked retries re-enter behind the live queue.
            return Some(TicketStatus::Queued {
                position: self.queue.len() + idx,
            });
        }
        if self.finished.contains_key(&ticket.0) {
            return Some(TicketStatus::Finished);
        }
        None
    }

    /// Claims a finished ticket's outcome.  Each outcome can be taken
    /// exactly once; `None` for unknown, already-taken, or still-unfinished
    /// tickets (check [`QueryEngine::status`] to tell these apart).
    pub fn take_outcome(&mut self, ticket: TicketId) -> Option<QueryOutcome> {
        self.finished.remove(&ticket.0)
    }

    /// Pumps the engine by one scheduler decision: re-queue retries whose
    /// backoff expired, admit from the queue head while budget and
    /// concurrency slots allow, enforce deadlines at the chunk boundary,
    /// then run **one chunk of one query** under the fairness policy.
    /// Returns what happened; [`EngineStep::Idle`] means the engine is
    /// drained, [`EngineStep::Waiting`] means pending work could not run
    /// *this* step (retry backoff, or budget freed mid-step) — keep
    /// stepping.
    pub fn step(&mut self) -> EngineStep {
        self.step_count += 1;
        self.requeue_ready_retries();
        self.admit_from_queue();
        if let Some(eo) = &self.engine_obs {
            eo.in_flight.set(self.running.len() as i64);
            eo.queued.set(self.queue.len() as i64);
        }

        self.stats.peak_concurrency = self.stats.peak_concurrency.max(self.running.len());
        let concurrent_bytes: usize = self
            .running
            .iter()
            .map(|r| r.rq.run.streaming().max_working_set_bytes())
            .sum();
        self.stats.peak_concurrent_bytes = self.stats.peak_concurrent_bytes.max(concurrent_bytes);
        if self.config.global_budget.is_bounded() {
            debug_assert!(concurrent_bytes <= self.config.global_budget.limit_bytes());
        }

        // Deadlines are enforced at chunk boundaries: any run whose
        // consumed service time passed its deadline is torn down (grant
        // reclaimed) before the next chunk is dispatched.
        self.enforce_deadlines();

        // One chunk of one query, per the fairness policy.
        let Some(id) = self.scheduler.dispatch() else {
            if !self.queue.is_empty() || !self.retry_parked.is_empty() {
                // A teardown this step freed budget the queue head will
                // claim next step, or retries are waiting out backoff.
                return EngineStep::Waiting;
            }
            return EngineStep::Idle;
        };
        let Some(pos) = self.running.iter().position(|r| r.ticket.0 as usize == id) else {
            // Unreachable by construction: every scheduled id has a
            // running slot.  Degrade to a lost turn instead of panicking.
            debug_assert!(false, "scheduled ticket vanished");
            self.scheduler.remove(id);
            return EngineStep::Waiting;
        };
        let ordinal = self.running[pos].ordinal;
        let chunk_index = self.running[pos].rq.run.run_stats().chunks_emitted;
        // Scripted worker panic?  Raised *inside* the catch below with the
        // exact payload a real crashed worker produces, so the injected
        // path and the real path are one recovery path.
        let injected_panic = self.faults.panic_at(ordinal, chunk_index);
        let chunk_started = self.running[pos]
            .request
            .deadline_ns
            .map(|_| Instant::now());
        let stepped = {
            let running = &mut self.running[pos];
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(worker) = injected_panic {
                    std::panic::panic_any(rdx_exec::WorkerPanic { worker });
                }
                running.rq.run.step(&mut running.sink)
            }))
        };
        match stepped {
            Ok(Some(rows)) => {
                let wall_ns = chunk_started
                    .map(|t| t.elapsed().as_nanos() as u64)
                    .unwrap_or(0);
                let slow_ns = self.faults.slowdown_ns(ordinal, chunk_index);
                let running = &mut self.running[pos];
                running.consumed_ns = running
                    .consumed_ns
                    .saturating_add(wall_ns)
                    .saturating_add(slow_ns);
                let ticket = running.ticket;
                self.stats.chunks_dispatched += 1;
                if let Some(eo) = &self.engine_obs {
                    eo.chunks_dispatched.inc();
                }
                EngineStep::Chunk { ticket, rows }
            }
            Ok(None) => {
                // Completed: release the grant, free the slot, park the
                // outcome.
                self.scheduler.remove(id);
                let r = self.running.swap_remove(pos);
                self.admission.release(r.share);
                self.release_tenant(r.tenant);
                let ticket = r.ticket;
                let (rq, sink) = (r.rq, r.sink);
                let stats = self.retire(rq);
                self.finished.insert(
                    ticket.0,
                    QueryOutcome {
                        request: r.request,
                        outcome: Ok(QueryResult {
                            result: sink.into_result(),
                            stats,
                        }),
                    },
                );
                EngineStep::Finished { ticket }
            }
            Err(payload) => {
                // A worker panicked mid-chunk.  Poison *only this run*:
                // reclaim its grant, drop its (possibly half-written) sink
                // and scratch, and surface a typed error — concurrent
                // queries keep their slots, grants and bytes untouched.
                let worker = payload
                    .downcast_ref::<rdx_exec::WorkerPanic>()
                    .map(|wp| wp.worker)
                    .unwrap_or(0);
                self.scheduler.remove(id);
                let r = self.running.swap_remove(pos);
                self.admission.release(r.share);
                self.release_tenant(r.tenant);
                self.stats.worker_panics += 1;
                if let Some(eo) = &self.engine_obs {
                    eo.worker_panics.inc();
                }
                let query = QueryId(r.rq.stats.query_id);
                self.obs.record(
                    query,
                    EventKind::Cancel {
                        reason: "worker_panic",
                    },
                );
                let ticket = r.ticket;
                match r.request.retry {
                    Some(policy) if r.attempt < policy.max_retries => {
                        self.park_retry(ticket, query, r.request, r.ordinal, r.attempt + 1, policy);
                        EngineStep::Waiting
                    }
                    _ => {
                        self.count_cancellation();
                        self.finished.insert(
                            ticket.0,
                            QueryOutcome {
                                request: r.request,
                                outcome: Err(RdxError::WorkerPanicked { worker }),
                            },
                        );
                        EngineStep::Finished { ticket }
                    }
                }
            }
        }
    }

    /// Cancels `ticket` wherever it is — queued, retry-parked, or running
    /// mid-flight — parking [`RdxError::Cancelled`] as its outcome and
    /// reclaiming its budget grant (the `Σ grants ≤ global` invariant
    /// holds through cancellation).  A running query is torn down at the
    /// current chunk boundary: parked runs are plain values between
    /// chunks, so teardown is just dropping the run (its warmed scratch is
    /// harvested back into the pool first).  Returns `false` for tickets
    /// that are already finished or were never issued — their outcome (if
    /// any) is untouched.
    pub fn cancel(&mut self, ticket: TicketId) -> bool {
        if let Some(idx) = self.queue.iter().position(|p| p.ticket == ticket) {
            let Some(p) = self.queue.remove(idx) else {
                return false;
            };
            self.obs
                .record(p.query, EventKind::Cancel { reason: "user" });
            self.count_cancellation();
            self.finished.insert(
                ticket.0,
                QueryOutcome {
                    request: p.request,
                    outcome: Err(RdxError::Cancelled),
                },
            );
            return true;
        }
        if let Some(idx) = self.retry_parked.iter().position(|p| p.ticket == ticket) {
            let p = self.retry_parked.remove(idx);
            self.obs
                .record(p.query, EventKind::Cancel { reason: "user" });
            self.count_cancellation();
            self.finished.insert(
                ticket.0,
                QueryOutcome {
                    request: p.request,
                    outcome: Err(RdxError::Cancelled),
                },
            );
            return true;
        }
        if let Some(pos) = self.running.iter().position(|r| r.ticket == ticket) {
            self.scheduler.remove(ticket.0 as usize);
            let mut r = self.running.swap_remove(pos);
            self.admission.release(r.share);
            self.release_tenant(r.tenant);
            // Between chunks the run's scratch is consistent — harvest it
            // for the next query before dropping the run.
            if self.scratch_pool.len() < self.config.max_concurrent {
                self.scratch_pool.push(r.rq.run.take_scratch());
            }
            let query = QueryId(r.rq.stats.query_id);
            self.obs.record(query, EventKind::Cancel { reason: "user" });
            self.count_cancellation();
            self.finished.insert(
                ticket.0,
                QueryOutcome {
                    request: r.request,
                    outcome: Err(RdxError::Cancelled),
                },
            );
            return true;
        }
        false
    }

    /// Tears down every running query whose consumed service time passed
    /// its deadline, parking [`DeadlineError::Exceeded`] and reclaiming
    /// the grant.  Runs at chunk boundaries only (the engine never
    /// preempts inside a chunk).  Deadline teardowns are never retried: an
    /// expired clock cannot be cured by waiting.
    fn enforce_deadlines(&mut self) {
        let mut pos = 0;
        while pos < self.running.len() {
            let r = &self.running[pos];
            let expired = match r.request.deadline_ns {
                Some(deadline_ns) => r.consumed_ns > deadline_ns,
                None => false,
            };
            if !expired {
                pos += 1;
                continue;
            }
            let ticket = r.ticket;
            let deadline_ns = r.request.deadline_ns.unwrap_or(0);
            let consumed_ns = r.consumed_ns;
            self.scheduler.remove(ticket.0 as usize);
            let mut r = self.running.swap_remove(pos);
            self.admission.release(r.share);
            self.release_tenant(r.tenant);
            if self.scratch_pool.len() < self.config.max_concurrent {
                self.scratch_pool.push(r.rq.run.take_scratch());
            }
            let query = QueryId(r.rq.stats.query_id);
            self.obs.record(
                query,
                EventKind::DeadlineMiss {
                    deadline_ns,
                    consumed_ns,
                },
            );
            self.obs
                .record(query, EventKind::Cancel { reason: "deadline" });
            self.count_cancellation();
            self.finished.insert(
                ticket.0,
                QueryOutcome {
                    request: r.request,
                    outcome: Err(RdxError::Deadline(DeadlineError::Exceeded {
                        consumed_ns,
                        deadline_ns,
                    })),
                },
            );
            // `swap_remove` moved another entry into `pos`: re-examine it.
        }
    }

    /// Parks a query for retry: charges one attempt, computes its
    /// ready-step from the policy's exponential backoff, and counts it.
    fn park_retry(
        &mut self,
        ticket: TicketId,
        query: QueryId,
        request: ServerRequest,
        ordinal: usize,
        attempt: u32,
        policy: RetryPolicy,
    ) {
        self.stats.retries += 1;
        if let Some(eo) = &self.engine_obs {
            eo.retries.inc();
        }
        let ready_at_step = self.step_count.saturating_add(policy.delay_before(attempt));
        self.retry_parked.push(RetryParked {
            ticket,
            query,
            request,
            submitted_at: Instant::now(),
            ordinal,
            attempt,
            ready_at_step,
        });
    }

    /// Moves retries whose backoff expired back to the admission queue, in
    /// park order (deterministic).
    fn requeue_ready_retries(&mut self) {
        let mut i = 0;
        while i < self.retry_parked.len() {
            if self.retry_parked[i].ready_at_step <= self.step_count {
                let rp = self.retry_parked.remove(i);
                self.queue.push_back(Pending {
                    ticket: rp.ticket,
                    query: rp.query,
                    request: rp.request,
                    submitted_at: rp.submitted_at,
                    ordinal: rp.ordinal,
                    attempt: rp.attempt,
                });
            } else {
                i += 1;
            }
        }
    }

    /// **The single planner entry** of the front door: validates `request`
    /// against the catalog, checks `budget` can hold one resident result
    /// row, chooses the projection codes (cost-based at the shared cache
    /// share unless the request pinned them), resolves the prepared prefix
    /// through the clustered-index cache, warms the run from the scratch
    /// pool, and prices its per-chunk cost for the stride scheduler.
    ///
    /// Every execution mode — one-shot `run`, `stream`, and submitted
    /// tickets — goes through this one function, which is what makes them
    /// byte-identical by construction.
    pub fn resolve(
        &mut self,
        request: &ServerRequest,
        budget: MemoryBudget,
    ) -> Result<ResolvedQuery, RdxError> {
        // Direct runs skip the queue: their lifecycle is submit → admit
        // (zero wait) → cache lookup → chunks → done, same shape as a
        // ticket's.  They consume a submission ordinal like any ticket, so
        // fault plans address both paths with one numbering.
        let query = QueryId::next();
        self.obs.record(query, EventKind::Submit);
        // Direct runs are attributed to their tenant in the trace, but
        // tenant quotas are an *admission* policy and the direct path is
        // the caller's own synchronous loop — only the ticket path sheds.
        if let Some(t) = request.tenant {
            self.obs
                .record(query, EventKind::Tenant { tenant: t.raw() });
        }
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        match self.resolve_with(request, budget, query, 0, ordinal) {
            Ok(rq) => Ok(rq),
            Err(e) => {
                self.reject(query, &e);
                Err(e)
            }
        }
    }

    /// [`QueryEngine::resolve`] under an already-minted query id and a
    /// known queue wait — the shared tail of the direct and ticket paths.
    fn resolve_with(
        &mut self,
        request: &ServerRequest,
        budget: MemoryBudget,
        query: QueryId,
        queue_wait_ns: u64,
        ordinal: usize,
    ) -> Result<ResolvedQuery, RdxError> {
        validate(&self.catalog, request)?;
        budget.check_one_row(streaming_bytes_per_row(&request.spec))?;
        let Some(larger) = self.catalog.get_arc(request.larger) else {
            return Err(RdxError::UnknownRelation {
                id: request.larger.raw(),
            });
        };
        let Some(smaller) = self.catalog.get_arc(request.smaller) else {
            return Err(RdxError::UnknownRelation {
                id: request.smaller.raw(),
            });
        };
        let threads = request
            .threads_hint
            .unwrap_or(self.config.threads_per_query);
        // Deadline-aware admission: price the *whole* streaming phase at
        // this query's granted share with the Appendix-A model before
        // spending anything on it.  An infeasible deadline is rejected
        // here — the query never runs a chunk, and its grant is released
        // by the caller like any admission failure.  The result
        // cardinality is not known pre-join, so the larger side's
        // cardinality bounds it from above (equi-join on a key): the check
        // is conservative, never optimistic.
        if let Some(deadline_ns) = request.deadline_ns {
            let predicted_ns = predicted_total_ns(
                &larger,
                &smaller,
                request,
                &self.shared_params,
                budget,
                threads,
            );
            if predicted_ns > deadline_ns {
                return Err(RdxError::Deadline(DeadlineError::Infeasible {
                    predicted_ns,
                    deadline_ns,
                }));
            }
        }
        self.stats.admissions += 1;
        self.obs.record(
            query,
            EventKind::Admit {
                share_bytes: budget.limit_bytes(),
                queue_wait_ns,
            },
        );
        if let Some(eo) = &self.engine_obs {
            eo.admissions.inc();
            eo.queue_wait_ns.record(queue_wait_ns);
        }
        let policy = ExecPolicy::with_threads(threads).budget(budget);
        let shared_params = &self.shared_params;
        let plan = request.codes.unwrap_or_else(|| {
            plan_by_cost_with_threads(
                &larger,
                &smaller,
                &request.spec,
                shared_params,
                policy.worker_threads(),
            )
        });
        // Derived by the same function the prepared prefix itself uses, so
        // the cache key can never drift from what it names.
        let cluster = rdx_exec::dsm_cluster_spec(smaller.cardinality(), shared_params);
        let key = ClusterKey {
            larger: request.larger,
            smaller: request.smaller,
            plan,
            cluster,
        };
        let pipeline = ProjectionPipeline::new(plan);
        // Scripted cache eviction fires just before the lookup, forcing
        // this query onto the rebuild path at an exact point.
        if self.faults.evict_cache(ordinal) {
            self.cache.clear();
        }
        let (prepared, cache_hit) = self.cache.get_or_prepare(key, || {
            pipeline.prepare(&larger, &smaller, shared_params, &policy)
        });
        self.obs
            .record(query, EventKind::CacheLookup { hit: cache_hit });
        if cache_hit {
            self.stats.cache_hits += 1;
        } else {
            self.stats.cache_misses += 1;
        }
        if let Some(eo) = &self.engine_obs {
            if cache_hit {
                eo.cache_hits.inc();
            } else {
                eo.cache_misses.inc();
            }
        }
        let mut run = DsmPipelineRun::over_dsm_arc(
            prepared,
            larger,
            smaller.clone(),
            &request.spec,
            shared_params,
            &policy,
        );
        // One pricing rule for everyone: the scheduler's stride weight, the
        // chunk loop's observed-vs-predicted recording, and the adaptive
        // controller all read the same per-chunk prediction.
        let predicted_chunk_ns = run.predicted_chunk_ns(shared_params);
        let predicted_chunk_cost_ms = predicted_chunk_ns as f64 / 1e6;
        run.attach_obs(&self.obs, query, predicted_chunk_ns);
        if request.profiled || self.config.profiled {
            run.attach_profile(&self.obs, query, shared_params);
        }
        if let Some(policy) = request.adaptive {
            // A profiled adaptive query reacts to simulated cache pressure —
            // deterministic stall time from the miss-count mailbox — instead
            // of wall-clock.  Falls back to wall-clock when profiling did
            // not arm (observability off).
            let source: Box<dyn FeedbackSource + Send> = match run.profile_shared() {
                Some(shared) => Box::new(MissCountFeedback::new(shared)),
                None => Box::new(WallClockFeedback),
            };
            run.attach_adaptive(policy, source, shared_params);
        }
        // Warm start: hand down scratch harvested from an earlier query.
        let mut scratch_reused = false;
        if let Some(scratch) = self.scratch_pool.pop() {
            run.attach_scratch(scratch);
            scratch_reused = true;
            self.stats.scratch_reuses += 1;
        }
        Ok(ResolvedQuery {
            run,
            stats: QueryStats {
                query_id: query.raw(),
                plan,
                cache_hit,
                scratch_reused,
                share_bytes: budget.limit_bytes(),
                replanned: false,
                chunks: 0,
                rows: 0,
                peak_chunk_bytes: 0,
                adaptive_replans: 0,
                predicted_chunk_cost_ms,
                timings: PhaseTimings::default(),
                wait: Duration::ZERO,
                service: Duration::ZERO,
            },
            started: Instant::now(),
        })
    }

    /// [`QueryEngine::resolve`] with the direct-execution budget rule: the
    /// *uncommitted residual* of the global budget, tightened by the
    /// request's own hint if any.  In-flight tickets keep their admission
    /// grants (their parked working buffers stay resident between chunk
    /// steps), so capping a direct run at the residual preserves the
    /// serving layer's load-bearing invariant — `Σ resident working sets ≤
    /// global` — even when `run`/`stream` calls interleave with tickets on
    /// one session.  When every byte is granted out, the direct run is
    /// refused with a typed [`RdxError::Budget`] instead of over-committing.
    pub fn resolve_direct(&mut self, request: &ServerRequest) -> Result<ResolvedQuery, RdxError> {
        let residual = self.admission.residual().map_err(RdxError::Budget)?;
        let budget = match request.budget_hint {
            Some(hint) if hint.limit_bytes() < residual.limit_bytes() => hint,
            _ => residual,
        };
        self.resolve(request, budget)
    }

    /// Retires a resolved query: harvests its warmed chunk scratch back
    /// into the pool and returns the finalised statistics.  The ticket path
    /// calls this on completion; direct `run`/`stream` callers call it
    /// after `run_to_completion`.
    pub fn retire(&mut self, mut rq: ResolvedQuery) -> QueryStats {
        if self.scratch_pool.len() < self.config.max_concurrent {
            self.scratch_pool.push(rq.run.take_scratch());
        }
        // A cache-hit run never paid the prefix build; fold those timings in
        // only when this query actually built it.
        let run_stats = if rq.stats.cache_hit {
            rq.run.run_stats()
        } else {
            rq.run.stats()
        };
        rq.stats.chunks = run_stats.chunks_emitted;
        rq.stats.rows = run_stats.rows_emitted;
        rq.stats.peak_chunk_bytes = run_stats.peak_chunk_bytes;
        rq.stats.adaptive_replans = run_stats.adaptive_replans;
        self.stats.adaptive_replans += run_stats.adaptive_replans as u64;
        if run_stats.adaptive_replans > 0 {
            if let Some(eo) = &self.engine_obs {
                eo.adaptive_replans.add(run_stats.adaptive_replans as u64);
            }
        }
        rq.stats.timings = run_stats.timings;
        rq.stats.service = rq.started.elapsed();
        let service_ns = rq.stats.service.as_nanos() as u64;
        self.obs.record(
            QueryId(rq.stats.query_id),
            EventKind::Done {
                rows: rq.stats.rows as u64,
                wall_ns: service_ns,
            },
        );
        if let Some(eo) = &self.engine_obs {
            eo.service_ns.record(service_ns);
        }
        rq.stats
    }

    /// Admits from the queue head while budget and slots allow (FIFO —
    /// admission never skips the head, so arrival order bounds waiting).
    fn admit_from_queue(&mut self) {
        while let Some(front) = self.queue.front() {
            let request = front.request;
            let front_ordinal = front.ordinal;
            let effective_row_bytes = streaming_bytes_per_row(&request.spec);
            // A hint below the one-row floor can never run — permanently,
            // so retry policies do not apply; reject before it holds up
            // the queue.
            if let Some(hint) = request.budget_hint {
                if let Err(e) = hint.check_one_row(effective_row_bytes) {
                    let Some(p) = self.queue.pop_front() else {
                        break;
                    };
                    let err = RdxError::Budget(e);
                    self.reject(p.query, &err);
                    self.finished.insert(
                        p.ticket.0,
                        QueryOutcome {
                            request,
                            outcome: Err(err),
                        },
                    );
                    continue;
                }
            }
            // Tenant quotas are checked *before* the global budget is even
            // consulted: an over-quota tenant sheds at its own cap without
            // consuming a shared-pool admission decision.  Over-quota is
            // transient (a release cures it), so retry policies apply like
            // budget rejections.
            if let Some(t) = request.tenant {
                if let Err(err) = self.tenants.check_admit(t, effective_row_bytes) {
                    let Some(p) = self.queue.pop_front() else {
                        break;
                    };
                    match p.request.retry {
                        Some(policy) if p.attempt < policy.max_retries => {
                            self.park_retry(
                                p.ticket,
                                p.query,
                                p.request,
                                p.ordinal,
                                p.attempt + 1,
                                policy,
                            );
                        }
                        _ => {
                            self.reject(p.query, &err);
                            self.finished.insert(
                                p.ticket.0,
                                QueryOutcome {
                                    request,
                                    outcome: Err(err),
                                },
                            );
                        }
                    }
                    continue;
                }
            }
            // A scripted grant denial rides the ordinary budget-rejection
            // path (and so also exercises retry policies).
            let decision = if self.faults.deny_grant(front_ordinal) {
                AdmissionDecision::Reject(BudgetError::ZeroBytes)
            } else {
                self.admission.try_admit(effective_row_bytes)
            };
            match decision {
                AdmissionDecision::Queue => break,
                AdmissionDecision::Reject(e) => {
                    let Some(p) = self.queue.pop_front() else {
                        break;
                    };
                    match p.request.retry {
                        Some(policy) if p.attempt < policy.max_retries => {
                            self.park_retry(
                                p.ticket,
                                p.query,
                                p.request,
                                p.ordinal,
                                p.attempt + 1,
                                policy,
                            );
                        }
                        _ => {
                            let err = RdxError::Budget(e);
                            self.reject(p.query, &err);
                            self.finished.insert(
                                p.ticket.0,
                                QueryOutcome {
                                    request,
                                    outcome: Err(err),
                                },
                            );
                        }
                    }
                }
                AdmissionDecision::Admit { share, replanned } => {
                    let Some(p) = self.queue.pop_front() else {
                        break;
                    };
                    // The effective budget: the admission grant, tightened
                    // by the request's own hint if any (a hint can only
                    // shrink the share, never grow it).
                    let effective = match request.budget_hint {
                        Some(hint) if hint.limit_bytes() < share.limit_bytes() => hint,
                        _ => share,
                    };
                    // A tenant byte cap tightens the grant further — the
                    // same mechanism as the hint — and the final limit is
                    // charged against the tenant, so `Σ` of a tenant's
                    // grants `≤` its cap holds by construction.  The
                    // check above guaranteed the headroom holds one row.
                    let tenant = match request.tenant {
                        Some(t) => match self.tenants.remaining_bytes(t) {
                            Some(remaining) => {
                                let capped = if !effective.is_bounded()
                                    || remaining < effective.limit_bytes()
                                {
                                    MemoryBudget::bytes(remaining)
                                } else {
                                    effective
                                };
                                Some((t, capped.limit_bytes()))
                            }
                            // No byte cap: track the in-flight slot only.
                            None => Some((t, 0)),
                        },
                        None => None,
                    };
                    let effective = match tenant {
                        Some((_, bytes)) if bytes > 0 => MemoryBudget::bytes(bytes),
                        _ => effective,
                    };
                    if let Some((t, bytes)) = tenant {
                        self.tenants.charge(t, bytes);
                    }
                    let wait = p.submitted_at.elapsed();
                    match self.resolve_with(
                        &request,
                        effective,
                        p.query,
                        wait.as_nanos() as u64,
                        p.ordinal,
                    ) {
                        Ok(mut rq) => {
                            rq.stats.replanned = replanned;
                            rq.stats.wait = wait;
                            if replanned {
                                self.stats.replans += 1;
                                if let Some(eo) = &self.engine_obs {
                                    eo.replans.inc();
                                }
                            }
                            let urgency = deadline_urgency(&request, &rq);
                            self.scheduler.add_weighted(
                                p.ticket.0 as usize,
                                rq.stats.predicted_chunk_cost_ms,
                                urgency,
                            );
                            self.running.push(Running {
                                ticket: p.ticket,
                                request,
                                rq,
                                sink: MaterializeSink::new(),
                                share,
                                ordinal: p.ordinal,
                                attempt: p.attempt,
                                consumed_ns: 0,
                                tenant,
                            });
                        }
                        Err(e) => {
                            self.admission.release(share);
                            self.release_tenant(tenant);
                            self.reject(p.query, &e);
                            self.finished.insert(
                                p.ticket.0,
                                QueryOutcome {
                                    request,
                                    outcome: Err(e),
                                },
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The EDF-flavored stride weight for an admitted query: deadline slack
/// scales the stride down (an urgent query's pass advances slower, so it
/// wins more dispatches) and priority divides it.  `1.0` — plain fair
/// stride — for the default request.
///
/// Slack is measured against the *resolved* plan: predicted per-chunk cost
/// × planned chunk count.  The urgency floor (1/16) keeps even a
/// zero-slack query from monopolising the loop — deadlines shift service
/// shares, they do not suspend fairness.
fn deadline_urgency(request: &ServerRequest, rq: &ResolvedQuery) -> f64 {
    let priority = f64::from(request.priority.max(1));
    let slack_factor = match request.deadline_ns {
        Some(deadline_ns) => {
            let chunk_ns = (rq.stats.predicted_chunk_cost_ms * 1e6).max(0.0) as u64;
            let total_ns = chunk_ns.saturating_mul(rq.run.streaming().num_chunks as u64);
            let slack = deadline_ns.saturating_sub(total_ns);
            ((slack as f64 + 1.0) / (deadline_ns as f64 + 1.0)).clamp(1.0 / 16.0, 1.0)
        }
        None => 1.0,
    };
    slack_factor / priority
}

/// The Appendix-A streaming prediction for the whole query at `budget`,
/// in nanoseconds — the number deadline-aware admission compares against
/// [`ServerRequest::deadline_ns`].  Result cardinality is bounded above by
/// the larger side (equi-join on a key); a non-finite prediction saturates
/// to `u64::MAX`, which can only ever *reject*, never admit optimistically.
fn predicted_total_ns(
    larger: &DsmRelation,
    smaller: &DsmRelation,
    request: &ServerRequest,
    params: &CacheParams,
    budget: MemoryBudget,
    threads: usize,
) -> u64 {
    let result_rows = larger.cardinality();
    let plan = plan_streaming(
        result_rows,
        smaller.cardinality(),
        4,
        &request.spec,
        params,
        budget,
        threads,
    );
    let ms = predict_streaming_cost(
        &plan,
        smaller.cardinality(),
        result_rows,
        &request.spec,
        params,
    );
    if ms.is_finite() {
        (ms * 1e6).max(0.0) as u64
    } else {
        u64::MAX
    }
}

/// Request validation against the catalog, in workspace-wide error terms.
fn validate(catalog: &Catalog, request: &ServerRequest) -> Result<(), RdxError> {
    let larger = catalog
        .get(request.larger)
        .ok_or(RdxError::UnknownRelation {
            id: request.larger.raw(),
        })?;
    let smaller = catalog
        .get(request.smaller)
        .ok_or(RdxError::UnknownRelation {
            id: request.smaller.raw(),
        })?;
    if request.spec.project_larger > larger.width() {
        return Err(RdxError::TooManyColumns {
            side: Side::Larger,
            requested: request.spec.project_larger,
            available: larger.width(),
        });
    }
    if request.spec.project_smaller > smaller.width() {
        return Err(RdxError::TooManyColumns {
            side: Side::Smaller,
            requested: request.spec.project_smaller,
            available: smaller.width(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_core::budget::BudgetError;
    use rdx_core::strategy::QuerySpec;
    use rdx_dsm::ResultRelation;
    use rdx_workload::JoinWorkloadBuilder;

    fn engine(budget: MemoryBudget) -> QueryEngine {
        QueryEngine::new(ServeConfig {
            params: CacheParams::tiny_for_tests(),
            global_budget: budget,
            max_concurrent: 2,
            threads_per_query: 1,
            cache_bytes: 1 << 20,
            fairness: crate::FairnessPolicy::CostWeighted,
            plan_shares: None,
            observability: false,
            profiled: false,
            tenant_quotas: crate::tenant::TenantQuotas::default(),
        })
    }

    fn columns(result: &ResultRelation) -> Vec<Vec<i32>> {
        result
            .columns()
            .iter()
            .map(|c| c.as_slice().to_vec())
            .collect()
    }

    #[test]
    fn ticket_walks_queued_running_finished() {
        let w = JoinWorkloadBuilder::equal(1_500, 1).seed(3).build();
        let mut engine = engine(MemoryBudget::bytes(64));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(1);
        let ticket = engine.submit(ServerRequest::new(larger, smaller, spec));
        assert_eq!(
            engine.status(ticket),
            Some(TicketStatus::Queued { position: 0 })
        );
        // First step admits and runs one chunk.
        assert!(matches!(
            engine.step(),
            EngineStep::Chunk { ticket: t, rows } if t == ticket && rows > 0
        ));
        assert!(matches!(
            engine.status(ticket),
            Some(TicketStatus::Running { chunks: 1, .. })
        ));
        while engine.step() != EngineStep::Idle {}
        assert_eq!(engine.status(ticket), Some(TicketStatus::Finished));
        let outcome = engine.take_outcome(ticket).expect("outcome parked");
        let q = outcome.outcome.expect("query served");
        assert_eq!(q.stats.rows, w.expected_matches);
        assert!(q.stats.chunks > 1);
        // Taken exactly once.
        assert!(engine.take_outcome(ticket).is_none());
        assert_eq!(engine.status(ticket), None);
    }

    #[test]
    fn submit_between_steps_joins_the_running_mix() {
        let w = JoinWorkloadBuilder::equal(2_000, 1).seed(5).build();
        let mut engine = engine(MemoryBudget::bytes(4 * 1024));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(1);
        let a = engine.submit(ServerRequest::new(larger, smaller, spec));
        // Step a few chunks of A alone…
        for _ in 0..3 {
            assert!(matches!(engine.step(), EngineStep::Chunk { .. }));
        }
        // …then submit B *between chunk steps of the in-flight A* — the
        // async-front enabler.
        let b = engine.submit(ServerRequest::new(larger, smaller, spec));
        assert!(matches!(
            engine.status(a),
            Some(TicketStatus::Running { .. })
        ));
        while engine.step() != EngineStep::Idle {}
        let ra = engine.take_outcome(a).unwrap().outcome.unwrap();
        let rb = engine.take_outcome(b).unwrap().outcome.unwrap();
        // Interleaving is invisible in the results.
        assert_eq!(columns(&ra.result), columns(&rb.result));
        assert_eq!(ra.stats.rows, w.expected_matches);
        assert!(engine.stats().peak_concurrency >= 2);
    }

    #[test]
    fn invalid_submissions_finish_immediately_with_typed_errors() {
        let w = JoinWorkloadBuilder::equal(300, 1).seed(7).build();
        let mut engine = engine(MemoryBudget::bytes(4 * 1024));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let ghost = engine.submit(ServerRequest::new(
            RelationId(99),
            smaller,
            QuerySpec::symmetric(1),
        ));
        assert_eq!(engine.status(ghost), Some(TicketStatus::Finished));
        assert_eq!(
            engine.take_outcome(ghost).unwrap().outcome.unwrap_err(),
            RdxError::UnknownRelation { id: 99 }
        );
        // A hint below the one-row floor fails at admission time.
        let starved = engine.submit(
            ServerRequest::new(larger, smaller, QuerySpec::symmetric(1))
                .with_budget_hint(MemoryBudget::bytes(1)),
        );
        while engine.step() != EngineStep::Idle {}
        assert!(matches!(
            engine.take_outcome(starved).unwrap().outcome.unwrap_err(),
            RdxError::Budget(BudgetError::BelowOneRow { .. })
        ));
        // Unknown tickets report None, not a panic.  (u64::MAX is never
        // issued: the process-wide counter counts up from zero.)
        assert_eq!(engine.status(TicketId(u64::MAX)), None);
        assert!(engine.take_outcome(TicketId(u64::MAX)).is_none());
    }

    #[test]
    fn resolve_is_one_entry_for_direct_and_ticket_paths() {
        let w = JoinWorkloadBuilder::equal(1_200, 2).seed(11).build();
        let mut engine = engine(MemoryBudget::bytes(8 * 1024));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let request = ServerRequest::new(larger, smaller, QuerySpec::symmetric(2));

        // Direct: resolve → run_to_completion → retire.
        let mut rq = engine.resolve_direct(&request).expect("resolves");
        assert!(!rq.cache_hit());
        let mut sink = MaterializeSink::new();
        rq.run_to_completion(&mut sink);
        assert!(rq.is_done());
        let stats = engine.retire(rq);
        assert_eq!(stats.rows, w.expected_matches);
        let direct = sink.into_result();

        // Ticket: same request through the scheduler; the prefix now comes
        // from the cache the direct run warmed.
        let ticket = engine.submit(request);
        while engine.step() != EngineStep::Idle {}
        let q = engine.take_outcome(ticket).unwrap().outcome.unwrap();
        assert!(q.stats.cache_hit);
        assert_eq!(columns(&direct), columns(&q.result));

        // Pinned codes override the planner through the same entry.
        let pinned = engine
            .resolve_direct(&request.with_codes(q.stats.plan))
            .unwrap();
        assert_eq!(pinned.plan(), q.stats.plan);
        engine.retire(pinned);
    }

    #[test]
    fn direct_runs_cannot_overcommit_past_in_flight_grants() {
        let w = JoinWorkloadBuilder::equal(1_000, 1).seed(13).build();
        let mut engine = engine(MemoryBudget::bytes(4_096)); // max_concurrent = 2
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let request = ServerRequest::new(larger, smaller, QuerySpec::symmetric(1));

        // One ticket in flight holds its 2 KB fair share…
        engine.submit(request);
        assert!(matches!(engine.step(), EngineStep::Chunk { .. }));
        // …so a direct run is capped at the 2 KB residual, keeping
        // Σ resident working sets ≤ the 4 KB global budget.
        let rq = engine.resolve_direct(&request).expect("residual fits");
        assert_eq!(rq.stats.share_bytes, 2_048);
        engine.retire(rq);

        // With the whole budget granted out, a direct run is refused with a
        // typed error instead of over-committing.
        engine.submit(request);
        assert!(matches!(engine.step(), EngineStep::Chunk { .. }));
        assert_eq!(engine.in_flight(), 2);
        let err = match engine.resolve_direct(&request) {
            Err(e) => e,
            Ok(_) => panic!("fully committed budget must refuse direct runs"),
        };
        assert_eq!(err, RdxError::Budget(BudgetError::ZeroBytes));

        // Draining the tickets frees the budget again.
        while engine.step() != EngineStep::Idle {}
        let rq = engine.resolve_direct(&request).expect("budget released");
        assert_eq!(rq.stats.share_bytes, 4_096);
        engine.retire(rq);
    }

    #[test]
    fn cancel_reclaims_grants_at_any_state() {
        let w = JoinWorkloadBuilder::equal(1_500, 1).seed(17).build();
        let mut engine = engine(MemoryBudget::bytes(64));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let request = ServerRequest::new(larger, smaller, QuerySpec::symmetric(1));

        // Cancel while still queued: no grant was ever held.
        let queued = engine.submit(request);
        assert!(engine.cancel(queued));
        assert_eq!(engine.status(queued), Some(TicketStatus::Finished));
        assert_eq!(
            engine.take_outcome(queued).unwrap().outcome.unwrap_err(),
            RdxError::Cancelled
        );
        assert_eq!(engine.committed_bytes(), 0);

        // Cancel mid-flight: the grant comes back at the chunk boundary.
        let running = engine.submit(request);
        for _ in 0..3 {
            assert!(matches!(engine.step(), EngineStep::Chunk { .. }));
        }
        assert!(engine.committed_bytes() > 0);
        assert!(engine.cancel(running));
        assert_eq!(engine.committed_bytes(), 0);
        assert_eq!(
            engine.take_outcome(running).unwrap().outcome.unwrap_err(),
            RdxError::Cancelled
        );
        // Exactly one terminal observation; cancelling again is a no-op.
        assert!(engine.take_outcome(running).is_none());
        assert!(!engine.cancel(running));
        assert_eq!(engine.stats().cancellations, 2);
        assert_eq!(engine.step(), EngineStep::Idle);

        // A survivor submitted afterwards is unaffected.
        let survivor = engine.submit(request);
        while engine.step() != EngineStep::Idle {}
        let q = engine.take_outcome(survivor).unwrap().outcome.unwrap();
        assert_eq!(q.stats.rows, w.expected_matches);
    }

    #[test]
    fn infeasible_deadline_is_rejected_before_any_chunk_runs() {
        let w = JoinWorkloadBuilder::equal(2_000, 1).seed(19).build();
        let mut engine = engine(MemoryBudget::bytes(4 * 1024));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(1);

        // 1 ns of service time can never cover a 2 000-row projection.
        let doomed = engine.submit(ServerRequest::new(larger, smaller, spec).with_deadline(1));
        while engine.step() != EngineStep::Idle {}
        match engine.take_outcome(doomed).unwrap().outcome.unwrap_err() {
            RdxError::Deadline(DeadlineError::Infeasible {
                predicted_ns,
                deadline_ns,
            }) => {
                assert!(predicted_ns > deadline_ns);
                assert_eq!(deadline_ns, 1);
            }
            other => panic!("expected infeasible-deadline rejection, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.deadline_rejects, 1);
        assert_eq!(stats.chunks_dispatched, 0, "rejected before any chunk ran");
        assert_eq!(engine.committed_bytes(), 0);

        // A generous deadline admits and completes normally.
        let fine = engine.submit(ServerRequest::new(larger, smaller, spec).with_deadline(u64::MAX));
        while engine.step() != EngineStep::Idle {}
        let q = engine.take_outcome(fine).unwrap().outcome.unwrap();
        assert_eq!(q.stats.rows, w.expected_matches);
    }

    #[test]
    fn scripted_slowdown_trips_the_deadline_mid_flight() {
        let w = JoinWorkloadBuilder::equal(1_500, 1).seed(23).build();
        let mut engine = engine(MemoryBudget::bytes(64));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        // 1 s of real slack dwarfs actual wall time; the scripted 10¹² ns
        // slowdown at chunk 2 is what trips it — deterministically.
        engine.inject_faults(FaultPlan::new().slow_at(0, 2, 1_000_000_000_000));
        let ticket = engine.submit(
            ServerRequest::new(larger, smaller, QuerySpec::symmetric(1))
                .with_deadline(1_000_000_000),
        );
        while engine.step() != EngineStep::Idle {}
        match engine.take_outcome(ticket).unwrap().outcome.unwrap_err() {
            RdxError::Deadline(DeadlineError::Exceeded {
                consumed_ns,
                deadline_ns,
            }) => {
                assert!(consumed_ns > deadline_ns);
                assert_eq!(deadline_ns, 1_000_000_000);
            }
            other => panic!("expected deadline-exceeded, got {other:?}"),
        }
        assert_eq!(engine.committed_bytes(), 0);
        assert_eq!(engine.stats().cancellations, 1);
    }

    #[test]
    fn injected_panic_poisons_one_run_and_retry_recovers_it() {
        let w = JoinWorkloadBuilder::equal(1_500, 1).seed(29).build();
        let mut engine = engine(MemoryBudget::bytes(64));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let request = ServerRequest::new(larger, smaller, QuerySpec::symmetric(1));

        // Without a retry policy the panic surfaces as a typed error.
        engine.inject_faults(FaultPlan::new().panic_at(0, 1, 3));
        let doomed = engine.submit(request);
        while engine.step() != EngineStep::Idle {}
        assert_eq!(
            engine.take_outcome(doomed).unwrap().outcome.unwrap_err(),
            RdxError::WorkerPanicked { worker: 3 }
        );
        assert_eq!(engine.committed_bytes(), 0);
        assert_eq!(engine.stats().worker_panics, 1);

        // With one, the re-run completes and matches a clean run exactly.
        engine.inject_faults(FaultPlan::new().panic_at(1, 1, 0));
        let retried = engine.submit(request.with_retry(RetryPolicy::with_retries(1)));
        let clean = engine.submit(request);
        while engine.step() != EngineStep::Idle {}
        let qr = engine.take_outcome(retried).unwrap().outcome.unwrap();
        let qc = engine.take_outcome(clean).unwrap().outcome.unwrap();
        assert_eq!(columns(&qr.result), columns(&qc.result));
        assert_eq!(qr.stats.rows, w.expected_matches);
        let stats = engine.stats();
        assert_eq!(stats.worker_panics, 2);
        assert_eq!(stats.retries, 1);
    }

    #[test]
    fn denied_grants_retry_through_waiting_steps() {
        let w = JoinWorkloadBuilder::equal(800, 1).seed(31).build();
        let mut engine = engine(MemoryBudget::bytes(4 * 1024));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let request = ServerRequest::new(larger, smaller, QuerySpec::symmetric(1));

        // Two scripted denials; two retries in the policy → eventually done.
        engine.inject_faults(FaultPlan::new().deny_grant(0).deny_grant(0));
        let ticket = engine.submit(request.with_retry(RetryPolicy::with_retries(2)));
        let mut saw_waiting = false;
        loop {
            match engine.step() {
                EngineStep::Idle => break,
                EngineStep::Waiting => saw_waiting = true,
                _ => {}
            }
        }
        assert!(saw_waiting, "backoff steps surface as Waiting, not Idle");
        let q = engine.take_outcome(ticket).unwrap().outcome.unwrap();
        assert_eq!(q.stats.rows, w.expected_matches);
        assert_eq!(engine.stats().retries, 2);
        assert_eq!(engine.stats().budget_rejects, 0, "retried, never rejected");

        // Exhausting the policy surfaces the budget error.
        engine.inject_faults(FaultPlan::new().deny_grant(1).deny_grant(1));
        let doomed = engine.submit(request.with_retry(RetryPolicy::with_retries(1)));
        while engine.step() != EngineStep::Idle {}
        assert!(matches!(
            engine.take_outcome(doomed).unwrap().outcome.unwrap_err(),
            RdxError::Budget(BudgetError::ZeroBytes)
        ));
        assert_eq!(engine.stats().budget_rejects, 1);
    }

    #[test]
    fn tight_deadlines_outrun_loose_ones_under_contention() {
        let w = JoinWorkloadBuilder::equal(2_000, 1).seed(37).build();
        let mut engine = engine(MemoryBudget::bytes(4 * 1024));
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(1);
        // Same work, but one has almost no slack: the EDF weight should
        // finish it first even though it was submitted second.
        let loose =
            engine.submit(ServerRequest::new(larger, smaller, spec).with_deadline(u64::MAX));
        let tight = engine.submit(
            ServerRequest::new(larger, smaller, spec)
                .with_deadline(60_000_000_000)
                .with_priority(4),
        );
        let mut finish_order = Vec::new();
        loop {
            match engine.step() {
                EngineStep::Idle => break,
                EngineStep::Finished { ticket } => finish_order.push(ticket),
                _ => {}
            }
        }
        assert_eq!(finish_order, vec![tight, loose]);
        let qt = engine.take_outcome(tight).unwrap().outcome.unwrap();
        let ql = engine.take_outcome(loose).unwrap().outcome.unwrap();
        assert_eq!(columns(&qt.result), columns(&ql.result));
    }

    #[test]
    fn tenant_quotas_shed_at_admission_and_release_on_teardown() {
        use crate::tenant::{TenantQuota, TenantQuotas};
        let mut engine = QueryEngine::new(ServeConfig {
            params: CacheParams::tiny_for_tests(),
            global_budget: MemoryBudget::bytes(64 * 1024),
            max_concurrent: 4,
            threads_per_query: 1,
            cache_bytes: 1 << 20,
            fairness: crate::FairnessPolicy::CostWeighted,
            plan_shares: Some(1),
            observability: false,
            profiled: false,
            tenant_quotas: TenantQuotas::unlimited()
                .with_tenant("burst", TenantQuota::unlimited().in_flight(1)),
        });
        let w = JoinWorkloadBuilder::equal(400, 1).seed(11).build();
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(1);
        let burst = engine.tenant_id("burst");
        let free = engine.tenant_id("free");

        // Two tagged submissions from the capped tenant plus one from an
        // uncapped one: the first "burst" query is admitted, the second is
        // shed at its own cap, and the "free" tenant is untouched.
        let first = engine.submit(ServerRequest::new(larger, smaller, spec).with_tenant(burst));
        let second = engine.submit(ServerRequest::new(larger, smaller, spec).with_tenant(burst));
        let other = engine.submit(ServerRequest::new(larger, smaller, spec).with_tenant(free));
        while engine.step() != EngineStep::Idle {}

        let shed = engine.take_outcome(second).unwrap().outcome.unwrap_err();
        assert!(matches!(
            shed,
            RdxError::TenantQuota { tenant, kind: rdx_core::error::TenantQuotaKind::InFlight { limit: 1, .. } }
                if tenant == burst.raw()
        ));
        let ok_first = engine.take_outcome(first).unwrap().outcome.unwrap();
        let ok_other = engine.take_outcome(other).unwrap().outcome.unwrap();
        assert_eq!(columns(&ok_first.result), columns(&ok_other.result));
        assert_eq!(engine.stats().tenant_quota_rejects, 1);

        // Completion released the slot: the same tenant admits again.
        let bs = engine.tenant_stats(burst).unwrap();
        assert_eq!((bs.in_flight, bs.committed_bytes), (0, 0));
        assert_eq!((bs.admissions, bs.rejections), (1, 1));
        let third = engine.submit(ServerRequest::new(larger, smaller, spec).with_tenant(burst));
        while engine.step() != EngineStep::Idle {}
        assert!(engine.take_outcome(third).unwrap().outcome.is_ok());
    }

    #[test]
    fn tenant_byte_cap_tightens_the_grant_like_a_hint() {
        use crate::tenant::{TenantQuota, TenantQuotas};
        let mut engine = QueryEngine::new(ServeConfig {
            params: CacheParams::tiny_for_tests(),
            global_budget: MemoryBudget::bytes(64 * 1024),
            max_concurrent: 2,
            threads_per_query: 1,
            cache_bytes: 1 << 20,
            fairness: crate::FairnessPolicy::CostWeighted,
            plan_shares: Some(1),
            observability: false,
            profiled: false,
            tenant_quotas: TenantQuotas::unlimited()
                .with_default(TenantQuota::unlimited().resident_bytes(512)),
        });
        let w = JoinWorkloadBuilder::equal(600, 1).seed(13).build();
        let larger = engine.register(w.larger.clone());
        let smaller = engine.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(1);
        let capped = engine.tenant_id("capped");

        let t = engine.submit(ServerRequest::new(larger, smaller, spec).with_tenant(capped));
        // While running, the tenant's byte charge equals the tightened
        // grant — never the (much larger) global share.
        let mut seen_charge = 0;
        loop {
            match engine.step() {
                EngineStep::Idle => break,
                _ => {
                    let s = engine.tenant_stats(capped).unwrap();
                    seen_charge = seen_charge.max(s.committed_bytes);
                }
            }
        }
        assert_eq!(seen_charge, 512);
        let q = engine.take_outcome(t).unwrap().outcome.unwrap();
        assert_eq!(q.stats.share_bytes, 512);
        assert_eq!(q.result.cardinality(), w.expected_matches);
        // Untagged queries on the same engine bypass tenant accounting.
        let untagged = engine.submit(ServerRequest::new(larger, smaller, spec));
        while engine.step() != EngineStep::Idle {}
        let qu = engine.take_outcome(untagged).unwrap().outcome.unwrap();
        assert!(qu.stats.share_bytes > 512);
        assert_eq!(columns(&q.result), columns(&qu.result));
    }
}
