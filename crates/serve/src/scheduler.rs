//! The **fair chunk scheduler**: interleaves budget-sized pipeline chunks
//! from the active queries so a big scan cannot starve small lookups.
//!
//! PR 2's chunk boundaries are natural preemption points — a
//! [`rdx_exec::PipelineRun`] parks between chunks as a plain value — so
//! fairness needs no threads and no signals: the serving loop just decides
//! *whose* chunk runs next.  The decision rule is **stride scheduling**:
//! every query carries a `pass` value; the scheduler always runs the query
//! with the smallest pass (ties broken by arrival order, keeping the whole
//! loop deterministic), then advances that query's pass by its `stride`.
//!
//! * [`FairnessPolicy::RoundRobin`] gives every query stride 1: strict
//!   alternation, one chunk each.
//! * [`FairnessPolicy::CostWeighted`] uses the *predicted per-chunk cost*
//!   (Appendix-A models at the query's cache share) as the stride: passes
//!   then advance in predicted milliseconds, so each query receives an
//!   equal share of predicted machine time — a query with 10× cheaper
//!   chunks runs 10× as many of them, and short lookups drain quickly while
//!   a scan's expensive chunks space out.

/// How the scheduler weighs queries against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairnessPolicy {
    /// One chunk per query per round, in arrival order.
    RoundRobin,
    /// Equal shares of *predicted* time: stride = predicted per-chunk cost.
    #[default]
    CostWeighted,
}

/// Floor on a cost-weighted stride: small enough that any genuinely cheap
/// query still runs orders of magnitude more often than an expensive one,
/// large enough that `pass += stride` always moves the pass for any
/// realistic pass magnitude (f64 has ~16 significant digits; passes stay in
/// predicted-milliseconds scale).  A sub-ulp stride — e.g. the naive
/// `f64::MIN_POSITIVE` — would be absorbed by rounding and let one query
/// monopolise the loop forever.
const MIN_STRIDE: f64 = 1e-6;

/// Ceiling on a stride, so an infinite/overflowing cost prediction parks a
/// query at the back of the service order instead of pushing its pass to
/// infinity and starving it outright.
const MAX_STRIDE: f64 = 1e12;

#[derive(Debug)]
struct Entry {
    id: usize,
    pass: f64,
    stride: f64,
    arrival: u64,
}

/// Deterministic stride scheduler over opaque query ids.
#[derive(Debug)]
pub struct ChunkScheduler {
    policy: FairnessPolicy,
    entries: Vec<Entry>,
    arrivals: u64,
    dispatches: u64,
}

impl ChunkScheduler {
    /// An empty scheduler.
    pub fn new(policy: FairnessPolicy) -> Self {
        ChunkScheduler {
            policy,
            entries: Vec::new(),
            arrivals: 0,
            dispatches: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> FairnessPolicy {
        self.policy
    }

    /// Number of queries currently scheduled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no query is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total dispatch decisions over this scheduler's lifetime.  One more
    /// per query than the chunks it ran: the serving loop discovers
    /// completion by dispatching a finished run once.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Adds a query.  `chunk_cost` is its predicted per-chunk cost (any
    /// consistent unit; ignored under round-robin).  A newcomer starts at
    /// the current minimum pass, so it neither starves nor gets to replay
    /// the service it missed.
    ///
    /// # Panics
    /// Panics if `id` is already scheduled.
    pub fn add(&mut self, id: usize, chunk_cost: f64) {
        self.add_weighted(id, chunk_cost, 1.0);
    }

    /// Adds a query with an **urgency weight** — the EDF-flavored deadline
    /// hook.  `urgency` scales the stride: an urgent query (low deadline
    /// slack) passes `urgency < 1`, shrinking its stride so its pass
    /// advances slower and it wins more dispatches; `1.0` is plain fair
    /// stride.  The weight applies under *both* policies (it is the whole
    /// point for round-robin too: a deadline query must be able to outrank
    /// strict alternation), and the product is clamped to the same
    /// `MIN_STRIDE`/`MAX_STRIDE` guards as any stride, so a zero or
    /// infinite urgency degrades gracefully instead of stalling the loop.
    ///
    /// # Panics
    /// Panics if `id` is already scheduled.
    pub fn add_weighted(&mut self, id: usize, chunk_cost: f64, urgency: f64) {
        assert!(
            self.entries.iter().all(|e| e.id != id),
            "query {id} scheduled twice"
        );
        let base = match self.policy {
            FairnessPolicy::RoundRobin => 1.0,
            // Guard against degenerate predictions: every stride must be
            // large enough to actually advance the pass (see [`MIN_STRIDE`])
            // and small enough not to starve its query ([`MAX_STRIDE`]);
            // a NaN prediction falls back to the neutral round-robin weight.
            FairnessPolicy::CostWeighted => {
                if chunk_cost.is_nan() {
                    1.0
                } else {
                    chunk_cost
                }
            }
        };
        let urgency = if urgency.is_nan() { 1.0 } else { urgency };
        let stride = (base * urgency).clamp(MIN_STRIDE, MAX_STRIDE);
        let pass = self
            .entries
            .iter()
            .map(|e| e.pass)
            .fold(f64::INFINITY, f64::min);
        let pass = if pass.is_finite() { pass } else { 0.0 };
        self.entries.push(Entry {
            id,
            pass,
            stride,
            arrival: self.arrivals,
        });
        self.arrivals += 1;
    }

    /// Picks the query whose chunk runs next (smallest pass, ties by
    /// arrival) and charges it one stride.  `None` when idle.
    pub fn dispatch(&mut self) -> Option<usize> {
        // `total_cmp` is NaN-safe: passes never are NaN (strides are
        // clamped finite), but a total order costs nothing and removes the
        // panic path outright.
        let next = self
            .entries
            .iter_mut()
            .min_by(|a, b| a.pass.total_cmp(&b.pass).then(a.arrival.cmp(&b.arrival)))?;
        next.pass += next.stride;
        self.dispatches += 1;
        Some(next.id)
    }

    /// Removes a completed (or cancelled) query.
    pub fn remove(&mut self, id: usize) {
        self.entries.retain(|e| e.id != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_alternates_in_arrival_order() {
        let mut s = ChunkScheduler::new(FairnessPolicy::RoundRobin);
        s.add(10, 99.0);
        s.add(20, 0.001);
        s.add(30, 5.0);
        let order: Vec<_> = (0..6).map(|_| s.dispatch().unwrap()).collect();
        assert_eq!(order, vec![10, 20, 30, 10, 20, 30]);
        assert_eq!(s.dispatches(), 6);
    }

    #[test]
    fn cost_weighted_gives_cheap_chunks_more_turns() {
        let mut s = ChunkScheduler::new(FairnessPolicy::CostWeighted);
        s.add(1, 10.0); // expensive scan
        s.add(2, 1.0); // cheap lookup
        let mut counts = [0usize; 2];
        for _ in 0..110 {
            match s.dispatch().unwrap() {
                1 => counts[0] += 1,
                2 => counts[1] += 1,
                _ => unreachable!(),
            }
        }
        // Equal predicted-time shares: ~10 cheap chunks per expensive one.
        assert_eq!(counts[0], 10);
        assert_eq!(counts[1], 100);
    }

    #[test]
    fn completion_and_late_arrival() {
        let mut s = ChunkScheduler::new(FairnessPolicy::CostWeighted);
        s.add(1, 1.0);
        s.add(2, 1.0);
        for _ in 0..10 {
            s.dispatch();
        }
        s.remove(1);
        assert_eq!(s.len(), 1);
        // A latecomer starts at the current minimum pass: it gets service
        // immediately but cannot monopolise to "catch up".
        s.add(3, 1.0);
        let order: Vec<_> = (0..4).map(|_| s.dispatch().unwrap()).collect();
        assert_eq!(order.iter().filter(|&&id| id == 3).count(), 2);
        assert_eq!(order.iter().filter(|&&id| id == 2).count(), 2);
    }

    #[test]
    fn urgency_weight_front_loads_tight_deadlines() {
        // Two equal-cost queries; one carries an urgency of 1/4 (tight
        // slack).  Equal predicted time per *pass unit* means the urgent
        // query now runs ~4 chunks per relaxed chunk.
        let mut s = ChunkScheduler::new(FairnessPolicy::CostWeighted);
        s.add_weighted(1, 2.0, 0.25);
        s.add(2, 2.0);
        let mut counts = [0usize; 2];
        for _ in 0..100 {
            match s.dispatch().unwrap() {
                1 => counts[0] += 1,
                2 => counts[1] += 1,
                _ => unreachable!(),
            }
        }
        assert_eq!(counts[0], 80, "{counts:?}");
        assert_eq!(counts[1], 20, "{counts:?}");
        // Round-robin honours urgency too — a deadline query must be able
        // to outrank strict alternation.
        let mut rr = ChunkScheduler::new(FairnessPolicy::RoundRobin);
        rr.add_weighted(1, 99.0, 0.5);
        rr.add(2, 99.0);
        let order: Vec<_> = (0..6).map(|_| rr.dispatch().unwrap()).collect();
        assert_eq!(order.iter().filter(|&&id| id == 1).count(), 4);
        // Degenerate urgencies clamp like any stride.
        let mut d = ChunkScheduler::new(FairnessPolicy::CostWeighted);
        d.add_weighted(7, 1.0, 0.0);
        d.add_weighted(8, 1.0, f64::NAN);
        d.add_weighted(9, 1.0, f64::INFINITY);
        for _ in 0..12 {
            assert!(d.dispatch().is_some());
        }
    }

    #[test]
    fn degenerate_costs_never_stall_or_monopolise() {
        // A zero predicted cost floors to a stride that still *advances the
        // pass*: a co-runner three floors wide must keep getting turns.  (A
        // sub-ulp fallback stride would be absorbed by fp rounding and hand
        // the zero-cost query the loop forever.)
        let mut s = ChunkScheduler::new(FairnessPolicy::CostWeighted);
        s.add(1, 0.0);
        s.add(2, 3.0 * MIN_STRIDE);
        let mut counts = [0usize; 2];
        for _ in 0..400 {
            match s.dispatch().unwrap() {
                1 => counts[0] += 1,
                2 => counts[1] += 1,
                _ => unreachable!(),
            }
        }
        assert!(counts[0] > counts[1], "{counts:?}");
        assert!(counts[1] >= 90, "co-runner starved: {counts:?}");
        // NaN and infinity clamp to sane strides and keep the loop sound.
        s.add(3, f64::NAN);
        s.add(4, f64::INFINITY);
        for _ in 0..30 {
            assert!(s.dispatch().is_some());
        }
        assert_eq!(s.len(), 4);
        for id in 1..=4 {
            s.remove(id);
        }
        assert!(s.is_empty());
        assert_eq!(s.dispatch(), None);
    }
}
