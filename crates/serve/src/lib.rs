//! # rdx-serve — cache-aware multi-query serving layer
//!
//! Every executor below this crate answers **one** projection query.  This
//! layer makes *concurrency, fairness and cross-query reuse* first-class:
//! many projection queries over a catalog of registered relations run at
//! once, arbitrated by exactly the quantities the paper models — cache
//! shares, memory budgets and predicted cost.
//!
//! Five pieces, one per module:
//!
//! * [`registry`] — the relation [`Catalog`]: queries name data by
//!   [`RelationId`], which is what makes cached intermediates safely
//!   shareable.
//! * [`admission`] — the [`AdmissionController`] splits a global
//!   [`rdx_core::budget::MemoryBudget`] into per-query grants
//!   (`per_query_share`, the RAM analogue of the paper's per-core cache
//!   share), queueing queries that do not fit, re-planning queries to
//!   tighter chunks when only a sliver is free, and rejecting — with a
//!   typed error — queries that could never run.  `Σ grants ≤ global`
//!   holds at every instant, so over-commit is impossible by construction.
//! * [`scheduler`] — the [`ChunkScheduler`] interleaves budget-sized
//!   pipeline chunks from the active queries by stride scheduling
//!   (round-robin, or weighted by the Appendix-A predicted per-chunk cost
//!   at each query's cache share), using PR 2's chunk boundaries as
//!   preemption points so a big scan cannot starve small lookups.
//! * [`cache`] — the [`ClusterCache`], a byte-budgeted LRU over
//!   [`rdx_exec::PreparedProjection`] prefixes keyed by
//!   `(relation ids, codes, cluster spec)`: repeated queries over the same
//!   join reuse the radix-clustered product instead of re-clustering.
//! * [`engine`] — the **ticket-granular [`QueryEngine`]** tying them
//!   together as a persistent value with open edges: non-blocking
//!   [`QueryEngine::submit`] returns a [`TicketId`] at any time (including
//!   between chunk steps of in-flight queries), [`QueryEngine::step`] pumps
//!   one admission-plus-chunk decision, and [`QueryEngine::resolve`] is the
//!   **single planner entry** every execution mode funnels through.
//! * [`tenant`] — the **per-tenant quota layer**: [`TenantQuotas`] caps a
//!   tenant's in-flight queries and resident grant bytes, checked at
//!   admission *before* the global `per_query_share` (typed
//!   [`rdx_core::error::RdxError::TenantQuota`] rejection) with per-tenant
//!   `engine.tenant.*` instruments — the paper's memory-budgeted execution
//!   model extended from queries to principals.
//!
//! [`RdxServer::run_batch`] is the legacy synchronous shape, now a thin
//! wrapper over tickets.  The load-bearing guarantee, exercised by the
//! workspace conformance grid: **any** interleaving of **any** admitted mix
//! produces, per query, output byte-identical to running that query alone —
//! scheduling changes *when* chunks run, never what they contain.
//!
//! ## Robustness
//!
//! The engine degrades *per query*, never per process.  A request may carry
//! a **deadline** ([`ServerRequest::with_deadline`]): admission predicts the
//! streaming cost at the query's cache share and rejects infeasible requests
//! with [`rdx_core::error::DeadlineError::Infeasible`] before a single chunk
//! runs, and admitted queries that overrun are torn down at the next chunk
//! boundary with [`rdx_core::error::DeadlineError::Exceeded`].  Any ticket
//! can be **cancelled** mid-flight ([`QueryEngine::cancel`]); its grant is
//! reclaimed at the chunk boundary, so `Σ grants ≤ global` holds through
//! every teardown.  A **worker panic** is caught per run and surfaces as
//! [`rdx_core::error::RdxError::WorkerPanicked`] on that query alone —
//! concurrent queries finish byte-identical to their serial runs.  A
//! [`rdx_core::fault::RetryPolicy`] re-queues budget-rejected or panicked
//! queries with deterministic drive-step backoff, and a scripted
//! [`rdx_core::fault::FaultPlan`] ([`QueryEngine::inject_faults`]) makes
//! every degradation path a pure function of the script.
//!
//! All fallible paths report the workspace-wide
//! [`rdx_core::error::RdxError`] ([`ServeError`] remains as an alias).
//!
//! [`Catalog`]: registry::Catalog
//! [`RelationId`]: registry::RelationId
//! [`AdmissionController`]: admission::AdmissionController
//! [`ChunkScheduler`]: scheduler::ChunkScheduler
//! [`ClusterCache`]: cache::ClusterCache
//! [`QueryEngine`]: engine::QueryEngine
//! [`QueryEngine::submit`]: engine::QueryEngine::submit
//! [`QueryEngine::step`]: engine::QueryEngine::step
//! [`QueryEngine::resolve`]: engine::QueryEngine::resolve
//! [`TicketId`]: engine::TicketId

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod engine;
pub mod registry;
pub mod scheduler;
pub mod server;
pub mod tenant;

pub use admission::{AdmissionController, AdmissionDecision};
pub use cache::{CacheStats, ClusterCache, ClusterKey};
pub use engine::{EngineStats, EngineStep, QueryEngine, ResolvedQuery, TicketId, TicketStatus};
pub use registry::{Catalog, RelationId};
pub use scheduler::{ChunkScheduler, FairnessPolicy};
pub use server::{
    BatchReport, BatchStats, QueryOutcome, QueryResult, QueryStats, RdxServer, ServeConfig,
    ServeError, ServerRequest,
};
pub use tenant::{TenantId, TenantQuota, TenantQuotas, TenantStats};
