//! The relation catalog: queries name relations by [`RelationId`], never by
//! reference, so the serving layer owns the data and every request is a
//! plain value.

use rdx_dsm::DsmRelation;
use std::sync::Arc;

/// Opaque handle to a registered relation.
///
/// Together with a [`rdx_core::cluster::RadixClusterSpec`] (and the
/// projection codes) this keys the cross-query clustered-join-index cache —
/// two requests naming the same ids are *the same data* by construction,
/// which is what makes cached prepared prefixes safe to share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub(crate) u32);

impl RelationId {
    /// The raw id — what [`rdx_core::error::RdxError::UnknownRelation`]
    /// carries, since the newtype is not visible from `rdx-core`.
    pub fn raw(&self) -> u32 {
        self.0
    }

    /// Rebuilds an id from its raw form — how a wire front-end (`rdx-net`)
    /// turns an untrusted client integer back into a handle.  No validity
    /// is implied: an id naming nothing resolves to `None` in the catalog
    /// and surfaces as a typed `UnknownRelation` from the engine.
    pub fn from_raw(id: u32) -> RelationId {
        RelationId(id)
    }
}

impl std::fmt::Display for RelationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rel#{}", self.0)
    }
}

/// The server's registry of queryable relations.
///
/// Registration is append-only: ids stay valid for the catalog's lifetime,
/// so cached prepared prefixes keyed by id can never dangle or alias a
/// replaced relation.  Relations are held behind `Arc` so an in-flight
/// query's pipeline run can *own* a clone of its inputs — parked runs are
/// `'static` values that never borrow the catalog.
#[derive(Debug, Default)]
pub struct Catalog {
    relations: Vec<Arc<DsmRelation>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a relation, returning its id.
    pub fn register(&mut self, relation: DsmRelation) -> RelationId {
        self.register_arc(Arc::new(relation))
    }

    /// Registers an already-shared relation without copying it — how two
    /// sessions (or a session and its tests) share one physical table.
    pub fn register_arc(&mut self, relation: Arc<DsmRelation>) -> RelationId {
        // 2^32 relations would exhaust memory long before this fires; the
        // assert documents the id-width limit without an unwrap path.
        assert!(
            self.relations.len() < u32::MAX as usize,
            "catalog overflow: relation ids are 32-bit"
        );
        let id = RelationId(self.relations.len() as u32);
        self.relations.push(relation);
        id
    }

    /// The relation behind `id`, if registered.
    pub fn get(&self, id: RelationId) -> Option<&DsmRelation> {
        self.relations.get(id.0 as usize).map(|r| r.as_ref())
    }

    /// An owning handle to the relation behind `id`, if registered — what
    /// in-flight pipeline runs capture so they never borrow the catalog.
    pub fn get_arc(&self, id: RelationId) -> Option<Arc<DsmRelation>> {
        self.relations.get(id.0 as usize).cloned()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// All registered ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.relations.len()).map(|i| RelationId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_dsm::Column;

    fn relation(n: u64) -> DsmRelation {
        DsmRelation::new(
            Column::from_vec((0..n).collect()),
            vec![Column::from_vec((0..n as i32).collect())],
        )
    }

    #[test]
    fn register_and_lookup() {
        let mut catalog = Catalog::new();
        assert!(catalog.is_empty());
        let a = catalog.register(relation(8));
        let b = catalog.register(relation(16));
        assert_ne!(a, b);
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.get(a).unwrap().cardinality(), 8);
        assert_eq!(catalog.get(b).unwrap().cardinality(), 16);
        assert!(catalog.get(RelationId(99)).is_none());
        assert_eq!(catalog.ids().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(a.to_string(), "rel#0");
    }

    #[test]
    fn arc_registration_shares_without_copying() {
        let mut catalog = Catalog::new();
        let shared = Arc::new(relation(4));
        let id = catalog.register_arc(shared.clone());
        assert!(Arc::ptr_eq(&shared, &catalog.get_arc(id).unwrap()));
        assert!(catalog.get_arc(RelationId(9)).is_none());
        assert_eq!(catalog.get(id).unwrap().cardinality(), 4);
    }
}
