//! The **per-tenant quota layer**: admission caps per principal, on top of
//! the global [`rdx_core::budget::MemoryBudget`] the
//! [`crate::admission::AdmissionController`] splits.
//!
//! The paper's execution model budgets *queries*; a serving front budgets
//! *principals* — the tenants behind the connections.  A [`TenantQuota`]
//! caps how many queries a tenant may have in flight and how many resident
//! grant bytes those queries may hold in total.  Quotas are enforced at
//! admission **before** the global `per_query_share` is consulted, so one
//! tenant's burst is shed at its own cap (typed
//! [`RdxError::TenantQuota`]) and never dips into the shared pool; the
//! byte cap also *tightens* an admitted query's grant the same way a
//! request's budget hint does, so `Σ` of a tenant's grants `≤` its cap
//! holds at every instant, by the same construction as the global
//! invariant.
//!
//! Tenants are interned by name ([`crate::engine::QueryEngine::tenant_id`])
//! into the `Copy` [`TenantId`] requests carry, and each tenant gets its
//! own `engine.tenant.<name>.*` instruments when observability is on.

use rdx_core::error::{RdxError, TenantQuotaKind};
use rdx_obs::Obs;
use std::collections::HashMap;

/// Opaque handle to an interned tenant — what [`crate::ServerRequest`]
/// carries.  Interned per engine; the raw value is what
/// [`RdxError::TenantQuota`] reports (the newtype is not visible from
/// `rdx-core`, like `RelationId`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub(crate) u32);

impl TenantId {
    /// The raw id — what [`RdxError::TenantQuota`] carries.
    pub fn raw(&self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// One tenant's admission caps.  `None` on either axis means unlimited;
/// the default is unlimited on both, so quota enforcement is strictly
/// opt-in per tenant (or via [`TenantQuotas::with_default`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantQuota {
    /// Most queries the tenant may have admitted at once.
    pub max_in_flight: Option<usize>,
    /// Most resident grant bytes the tenant's in-flight queries may hold
    /// in total.  Also tightens grants: a query is admitted at
    /// `min(share, hint, tenant remaining)`, so the cap is enforced by
    /// construction, not monitoring.
    pub max_resident_bytes: Option<usize>,
}

impl TenantQuota {
    /// No caps on either axis.
    pub fn unlimited() -> Self {
        TenantQuota::default()
    }

    /// Caps concurrent in-flight queries (builder form).
    pub fn in_flight(mut self, max: usize) -> Self {
        self.max_in_flight = Some(max);
        self
    }

    /// Caps total resident grant bytes (builder form).
    pub fn resident_bytes(mut self, max: usize) -> Self {
        self.max_resident_bytes = Some(max);
        self
    }
}

/// The engine-wide quota table: a default quota for every tenant plus
/// per-name overrides, resolved once at interning time.
#[derive(Debug, Clone, Default)]
pub struct TenantQuotas {
    default_quota: TenantQuota,
    overrides: Vec<(String, TenantQuota)>,
}

impl TenantQuotas {
    /// Every tenant unlimited (the [`crate::ServeConfig`] default).
    pub fn unlimited() -> Self {
        TenantQuotas::default()
    }

    /// Sets the quota tenants get unless overridden by name.
    pub fn with_default(mut self, quota: TenantQuota) -> Self {
        self.default_quota = quota;
        self
    }

    /// Overrides the quota for the tenant named `name` (last write wins).
    pub fn with_tenant(mut self, name: impl Into<String>, quota: TenantQuota) -> Self {
        let name = name.into();
        if let Some(entry) = self.overrides.iter_mut().find(|(n, _)| *n == name) {
            entry.1 = quota;
        } else {
            self.overrides.push((name, quota));
        }
        self
    }

    /// The quota `name` resolves to.
    pub fn quota_for(&self, name: &str) -> TenantQuota {
        self.overrides
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, q)| *q)
            .unwrap_or(self.default_quota)
    }
}

/// A point-in-time view of one tenant's admission accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// The name the tenant was interned under.
    pub name: String,
    /// The quota it resolved to at interning time.
    pub quota: TenantQuota,
    /// Queries currently admitted.
    pub in_flight: usize,
    /// Grant bytes currently charged against
    /// [`TenantQuota::max_resident_bytes`] (always 0 for tenants with no
    /// byte cap — nothing is charged where nothing is enforced).
    pub committed_bytes: usize,
    /// Queries admitted over the tenant's lifetime.
    pub admissions: u64,
    /// Queries refused with [`RdxError::TenantQuota`].
    pub rejections: u64,
}

/// Per-tenant mirror instruments, resolved once at interning time (same
/// pattern as the engine's own `EngineObs`).
#[derive(Debug)]
struct TenantObs {
    admissions: rdx_obs::Counter,
    rejections: rdx_obs::Counter,
    in_flight: rdx_obs::Gauge,
    committed_bytes: rdx_obs::Gauge,
}

impl TenantObs {
    fn new(obs: &Obs, name: &str) -> Option<TenantObs> {
        let metrics = obs.metrics()?;
        let label = |suffix: &str| format!("engine.tenant.{name}.{suffix}");
        Some(TenantObs {
            admissions: metrics.counter_named(&label("admissions")),
            rejections: metrics.counter_named(&label("rejections")),
            in_flight: metrics.gauge_named(&label("in_flight")),
            committed_bytes: metrics.gauge_named(&label("committed_bytes")),
        })
    }
}

/// One interned tenant's state.
#[derive(Debug)]
struct TenantState {
    name: String,
    quota: TenantQuota,
    in_flight: usize,
    committed_bytes: usize,
    admissions: u64,
    rejections: u64,
    obs: Option<TenantObs>,
}

/// The engine's tenant table: name interning plus per-tenant admission
/// accounting.  Ids minted by one engine are meaningless to another; a
/// foreign id simply resolves to no state (every check passes, nothing is
/// charged), same contract as an unknown relation id resolving to `None`.
#[derive(Debug)]
pub(crate) struct TenantRegistry {
    quotas: TenantQuotas,
    tenants: Vec<TenantState>,
    by_name: HashMap<String, u32>,
}

impl TenantRegistry {
    pub(crate) fn new(quotas: TenantQuotas) -> Self {
        TenantRegistry {
            quotas,
            tenants: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Interns `name`, resolving its quota and registering its
    /// `engine.tenant.<name>.*` instruments on first sight.
    pub(crate) fn intern(&mut self, name: &str, obs: &Obs) -> TenantId {
        if let Some(&id) = self.by_name.get(name) {
            return TenantId(id);
        }
        let id = self.tenants.len() as u32;
        self.tenants.push(TenantState {
            name: name.to_owned(),
            quota: self.quotas.quota_for(name),
            in_flight: 0,
            committed_bytes: 0,
            admissions: 0,
            rejections: 0,
            obs: TenantObs::new(obs, name),
        });
        self.by_name.insert(name.to_owned(), id);
        TenantId(id)
    }

    /// Whether the tenant can admit one more query needing at least
    /// `bytes_per_row` resident bytes — the check that runs *before*
    /// [`crate::admission::AdmissionController::try_admit`].
    pub(crate) fn check_admit(&self, t: TenantId, bytes_per_row: usize) -> Result<(), RdxError> {
        let Some(state) = self.tenants.get(t.0 as usize) else {
            return Ok(());
        };
        if let Some(limit) = state.quota.max_in_flight {
            if state.in_flight >= limit {
                return Err(RdxError::TenantQuota {
                    tenant: t.0,
                    kind: TenantQuotaKind::InFlight {
                        in_flight: state.in_flight,
                        limit,
                    },
                });
            }
        }
        if let Some(limit) = state.quota.max_resident_bytes {
            let remaining = limit.saturating_sub(state.committed_bytes);
            if remaining < bytes_per_row {
                return Err(RdxError::TenantQuota {
                    tenant: t.0,
                    kind: TenantQuotaKind::ResidentBytes {
                        needed: bytes_per_row,
                        in_use: state.committed_bytes,
                        limit,
                    },
                });
            }
        }
        Ok(())
    }

    /// The tenant's uncommitted resident-byte headroom, or `None` when it
    /// has no byte cap (nothing to tighten grants against).
    pub(crate) fn remaining_bytes(&self, t: TenantId) -> Option<usize> {
        let state = self.tenants.get(t.0 as usize)?;
        let limit = state.quota.max_resident_bytes?;
        Some(limit.saturating_sub(state.committed_bytes))
    }

    /// Charges an admission against the tenant: one in-flight slot plus
    /// `bytes` against the byte cap (0 when the tenant has none).
    pub(crate) fn charge(&mut self, t: TenantId, bytes: usize) {
        let Some(state) = self.tenants.get_mut(t.0 as usize) else {
            return;
        };
        state.in_flight += 1;
        state.committed_bytes += bytes;
        state.admissions += 1;
        if let Some(o) = &state.obs {
            o.admissions.inc();
            o.in_flight.set(state.in_flight as i64);
            o.committed_bytes.set(state.committed_bytes as i64);
        }
    }

    /// Returns a completed (or torn-down) query's charge to the tenant.
    pub(crate) fn release(&mut self, t: TenantId, bytes: usize) {
        let Some(state) = self.tenants.get_mut(t.0 as usize) else {
            return;
        };
        debug_assert!(state.in_flight > 0, "tenant release without charge");
        debug_assert!(bytes <= state.committed_bytes, "foreign tenant charge");
        state.in_flight = state.in_flight.saturating_sub(1);
        state.committed_bytes = state.committed_bytes.saturating_sub(bytes);
        if let Some(o) = &state.obs {
            o.in_flight.set(state.in_flight as i64);
            o.committed_bytes.set(state.committed_bytes as i64);
        }
    }

    /// Counts one [`RdxError::TenantQuota`] refusal against the tenant.
    pub(crate) fn count_reject(&mut self, t: TenantId) {
        let Some(state) = self.tenants.get_mut(t.0 as usize) else {
            return;
        };
        state.rejections += 1;
        if let Some(o) = &state.obs {
            o.rejections.inc();
        }
    }

    /// The tenant's accounting view, or `None` for a foreign id.
    pub(crate) fn stats(&self, t: TenantId) -> Option<TenantStats> {
        self.tenants.get(t.0 as usize).map(|s| TenantStats {
            name: s.name.clone(),
            quota: s.quota,
            in_flight: s.in_flight,
            committed_bytes: s.committed_bytes,
            admissions: s.admissions,
            rejections: s.rejections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_table_resolves_overrides_over_the_default() {
        let quotas = TenantQuotas::unlimited()
            .with_default(TenantQuota::unlimited().in_flight(4))
            .with_tenant(
                "noisy",
                TenantQuota::unlimited().in_flight(1).resident_bytes(64),
            )
            .with_tenant("noisy", TenantQuota::unlimited().in_flight(2));
        assert_eq!(quotas.quota_for("anyone").max_in_flight, Some(4));
        // Last write wins; the second override dropped the byte cap.
        let noisy = quotas.quota_for("noisy");
        assert_eq!(noisy.max_in_flight, Some(2));
        assert_eq!(noisy.max_resident_bytes, None);
    }

    #[test]
    fn interning_is_stable_and_checks_enforce_both_axes() {
        let quotas = TenantQuotas::unlimited().with_tenant(
            "capped",
            TenantQuota::unlimited().in_flight(2).resident_bytes(100),
        );
        let mut reg = TenantRegistry::new(quotas);
        let obs = Obs::disabled();
        let capped = reg.intern("capped", &obs);
        assert_eq!(reg.intern("capped", &obs), capped);
        let free = reg.intern("free", &obs);
        assert_ne!(capped, free);
        assert_eq!(capped.to_string(), "tenant#0");

        // First admission fits and is charged; a second exhausts the
        // in-flight cap, and releasing one clears it.
        assert_eq!(reg.check_admit(capped, 16), Ok(()));
        reg.charge(capped, 30);
        reg.charge(capped, 30);
        assert!(matches!(
            reg.check_admit(capped, 16),
            Err(RdxError::TenantQuota {
                kind: TenantQuotaKind::InFlight {
                    in_flight: 2,
                    limit: 2
                },
                ..
            })
        ));
        reg.release(capped, 30);
        assert_eq!(reg.check_admit(capped, 16), Ok(()));

        // The byte cap fires when the headroom cannot hold one row: one
        // query holding 90 of 100 bytes leaves an in-flight slot free but
        // only 10 bytes of headroom.
        reg.release(capped, 30);
        reg.charge(capped, 90);
        let quota_err = reg.check_admit(capped, 16);
        assert!(matches!(
            quota_err,
            Err(RdxError::TenantQuota {
                kind: TenantQuotaKind::ResidentBytes {
                    needed: 16,
                    limit: 100,
                    ..
                },
                ..
            })
        ));
        assert_eq!(reg.remaining_bytes(capped), Some(10));
        // Unlimited tenants have no headroom notion and always pass.
        assert_eq!(reg.remaining_bytes(free), None);
        assert_eq!(reg.check_admit(free, usize::MAX), Ok(()));

        // Foreign ids resolve to no state: checks pass, charges no-op.
        let foreign = TenantId(99);
        assert_eq!(reg.check_admit(foreign, 1), Ok(()));
        reg.charge(foreign, 10);
        reg.release(foreign, 10);
        assert!(reg.stats(foreign).is_none());
    }

    #[test]
    fn stats_track_admissions_and_rejections() {
        let quotas =
            TenantQuotas::unlimited().with_tenant("t", TenantQuota::unlimited().in_flight(8));
        let mut reg = TenantRegistry::new(quotas);
        let obs = Obs::disabled();
        let t = reg.intern("t", &obs);
        reg.charge(t, 32);
        reg.charge(t, 16);
        reg.count_reject(t);
        let s = reg.stats(t).unwrap();
        assert_eq!(s.name, "t");
        assert_eq!(s.in_flight, 2);
        assert_eq!(s.committed_bytes, 48);
        assert_eq!(s.admissions, 2);
        assert_eq!(s.rejections, 1);
        reg.release(t, 32);
        let s = reg.stats(t).unwrap();
        assert_eq!(s.in_flight, 1);
        assert_eq!(s.committed_bytes, 16);
    }

    #[test]
    fn per_tenant_instruments_register_when_observability_is_on() {
        let obs = Obs::enabled(rdx_obs::ObsConfig::default());
        let mut reg = TenantRegistry::new(
            TenantQuotas::unlimited().with_default(TenantQuota::unlimited().resident_bytes(256)),
        );
        let t = reg.intern("acme", &obs);
        reg.charge(t, 128);
        reg.count_reject(t);
        let snap = obs.metrics_snapshot().unwrap();
        assert_eq!(snap.counter("engine.tenant.acme.admissions"), Some(1));
        assert_eq!(snap.counter("engine.tenant.acme.rejections"), Some(1));
        assert_eq!(snap.gauge("engine.tenant.acme.in_flight"), Some(1));
        assert_eq!(snap.gauge("engine.tenant.acme.committed_bytes"), Some(128));
    }
}
