//! The **admission controller**: splits one global [`MemoryBudget`] across
//! concurrently admitted queries so their combined streaming working sets
//! can never exceed it.
//!
//! Each admitted query receives a byte *grant* it plans its chunking under
//! ([`rdx_core::strategy::planner::plan_streaming`] turns the grant into
//! `chunk_rows = grant / bytes_per_row`), the RAM analogue of
//! [`rdx_cache::CacheParams::per_core_share`] dividing the shared cache.
//! Because a streaming plan's peak working set never exceeds the budget it
//! was planned under (PR 2's asserted invariant), `Σ grants ≤ global`
//! implies `Σ peak working sets ≤ global` — over-commit is impossible by
//! construction, not by monitoring.
//!
//! Decisions, in order:
//! * at the concurrency cap → **queue**;
//! * a fair share (`global / max_concurrent`) fits → **admit** at the fair
//!   share (or less if the residual is smaller — that is the *re-plan*:
//!   the query runs with tighter chunks rather than waiting);
//! * the fair share cannot hold even one resident row but the residual can
//!   → **admit** at the one-row floor (maximally tight chunks);
//! * the residual cannot hold one row and something is running → **queue**
//!   until a release;
//! * nothing is running and the whole budget cannot hold one row →
//!   **reject** with the typed [`BudgetError`] (the query can never run).

use rdx_core::budget::{BudgetError, MemoryBudget};

/// What the controller decided for one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Run now under `share`; `replanned` is `true` when the grant is
    /// tighter than the fair share (the query was re-planned to smaller
    /// chunks instead of queueing).
    Admit {
        /// The granted budget share.
        share: MemoryBudget,
        /// Whether the grant is below the fair share.
        replanned: bool,
    },
    /// Wait for a running query to release its grant.
    Queue,
    /// The query can never be admitted under this global budget.
    Reject(BudgetError),
}

/// Splits a global [`MemoryBudget`] across admitted queries.
#[derive(Debug)]
pub struct AdmissionController {
    global: MemoryBudget,
    max_concurrent: usize,
    in_flight: usize,
    committed_bytes: usize,
}

impl AdmissionController {
    /// A controller over `global`, admitting at most `max_concurrent`
    /// queries at once.
    ///
    /// # Panics
    /// Panics if `max_concurrent == 0`.
    pub fn new(global: MemoryBudget, max_concurrent: usize) -> Self {
        assert!(max_concurrent >= 1, "must admit at least one query");
        AdmissionController {
            global,
            max_concurrent,
            in_flight: 0,
            committed_bytes: 0,
        }
    }

    /// Queries currently holding a grant.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Bytes currently granted out (0 under an unbounded global budget).
    pub fn committed_bytes(&self) -> usize {
        self.committed_bytes
    }

    /// The even per-query split of the global budget.
    pub fn fair_share(&self) -> MemoryBudget {
        self.global.per_query_share(self.max_concurrent)
    }

    /// The budget still uncommitted — what a query running *outside* the
    /// grant path (the engine's direct `run`/`stream` modes) may use
    /// without over-committing the global budget alongside the shares
    /// already granted to in-flight queries.  [`BudgetError::ZeroBytes`]
    /// when every byte is granted out.
    pub fn residual(&self) -> Result<MemoryBudget, BudgetError> {
        if !self.global.is_bounded() {
            return Ok(MemoryBudget::unbounded());
        }
        MemoryBudget::try_bytes(self.global.limit_bytes() - self.committed_bytes)
    }

    /// Attempts to admit a query whose streaming plan needs `bytes_per_row`
    /// resident bytes per in-flight result row.
    pub fn try_admit(&mut self, bytes_per_row: usize) -> AdmissionDecision {
        if self.in_flight >= self.max_concurrent {
            return AdmissionDecision::Queue;
        }
        if !self.global.is_bounded() {
            self.in_flight += 1;
            return AdmissionDecision::Admit {
                share: MemoryBudget::unbounded(),
                replanned: false,
            };
        }
        let fair = self.fair_share().limit_bytes();
        let available = self.global.limit_bytes() - self.committed_bytes;
        let grant = fair.min(available);
        let (grant, replanned) = if grant >= bytes_per_row {
            (grant, grant < fair)
        } else if available >= bytes_per_row {
            // The fair share is too small for even one row: re-plan at the
            // one-row floor rather than queueing forever.
            (bytes_per_row, true)
        } else if self.in_flight == 0 {
            // Alone and still too big: no release can ever help.
            return AdmissionDecision::Reject(BudgetError::BelowOneRow {
                budget_bytes: self.global.limit_bytes(),
                bytes_per_row,
            });
        } else {
            return AdmissionDecision::Queue;
        };
        self.in_flight += 1;
        self.committed_bytes += grant;
        debug_assert!(self.committed_bytes <= self.global.limit_bytes());
        AdmissionDecision::Admit {
            share: MemoryBudget::bytes(grant),
            replanned,
        }
    }

    /// Returns a completed query's grant to the pool.
    ///
    /// # Panics
    /// Panics if nothing is in flight or `share` exceeds the committed total
    /// (a share this controller never granted).
    pub fn release(&mut self, share: MemoryBudget) {
        assert!(self.in_flight > 0, "release without admission");
        self.in_flight -= 1;
        if self.global.is_bounded() {
            let bytes = share.limit_bytes();
            assert!(bytes <= self.committed_bytes, "foreign share released");
            self.committed_bytes -= bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admitted(d: AdmissionDecision) -> MemoryBudget {
        match d {
            AdmissionDecision::Admit { share, .. } => share,
            other => panic!("expected admission, got {other:?}"),
        }
    }

    #[test]
    fn fair_shares_split_the_global_budget() {
        let mut ac = AdmissionController::new(MemoryBudget::bytes(4096), 4);
        let shares: Vec<_> = (0..4).map(|_| admitted(ac.try_admit(16))).collect();
        assert!(shares.iter().all(|s| s.limit_bytes() == 1024));
        assert_eq!(ac.committed_bytes(), 4096);
        assert_eq!(ac.in_flight(), 4);
        // At the cap: queue, regardless of bytes.
        assert_eq!(ac.try_admit(16), AdmissionDecision::Queue);
        ac.release(shares[0]);
        assert_eq!(ac.committed_bytes(), 3072);
        assert!(matches!(ac.try_admit(16), AdmissionDecision::Admit { .. }));
    }

    #[test]
    fn never_over_commits() {
        let mut ac = AdmissionController::new(MemoryBudget::bytes(1000), 3);
        let mut total = 0;
        while let AdmissionDecision::Admit { share, .. } = ac.try_admit(100) {
            total += share.limit_bytes();
            assert!(ac.committed_bytes() <= 1000);
        }
        assert_eq!(total, ac.committed_bytes());
        assert!(total <= 1000);
    }

    #[test]
    fn residual_admission_replans_to_tighter_chunks() {
        let mut ac = AdmissionController::new(MemoryBudget::bytes(1024), 2);
        // First grant takes the 512-byte fair share; the second finds
        // exactly 512 remaining — both fit.
        admitted(ac.try_admit(16));
        let second = ac.try_admit(16);
        match second {
            AdmissionDecision::Admit { share, replanned } => {
                assert_eq!(share.limit_bytes(), 512);
                assert!(!replanned);
            }
            other => panic!("{other:?}"),
        }
        ac.release(MemoryBudget::bytes(512));
        ac.release(MemoryBudget::bytes(512));
        // A query whose rows are wider than the fair share gets the one-row
        // floor instead of queueing forever.
        match ac.try_admit(600) {
            AdmissionDecision::Admit { share, replanned } => {
                assert_eq!(share.limit_bytes(), 600);
                assert!(replanned);
            }
            other => panic!("{other:?}"),
        }
        // A second wide query must now wait: 424 residual < 600.
        assert_eq!(ac.try_admit(600), AdmissionDecision::Queue);
    }

    #[test]
    fn impossible_queries_get_a_typed_rejection() {
        let mut ac = AdmissionController::new(MemoryBudget::bytes(64), 2);
        assert_eq!(
            ac.try_admit(65),
            AdmissionDecision::Reject(BudgetError::BelowOneRow {
                budget_bytes: 64,
                bytes_per_row: 65
            })
        );
        assert_eq!(ac.in_flight(), 0);
        // Still admits feasible queries afterwards.
        assert!(matches!(ac.try_admit(32), AdmissionDecision::Admit { .. }));
    }

    #[test]
    fn unbounded_budget_admits_up_to_the_concurrency_cap() {
        let mut ac = AdmissionController::new(MemoryBudget::unbounded(), 2);
        assert!(!admitted(ac.try_admit(usize::MAX / 2)).is_bounded());
        assert!(!admitted(ac.try_admit(usize::MAX / 2)).is_bounded());
        assert_eq!(ac.try_admit(1), AdmissionDecision::Queue);
        assert_eq!(ac.committed_bytes(), 0);
        ac.release(MemoryBudget::unbounded());
        assert_eq!(ac.in_flight(), 1);
    }
}
