//! The **clustered-join-index cache**: cross-query reuse of the expensive
//! prepared prefix (join + reorder + second-side radix-cluster).
//!
//! The paper's whole projection phase streams over Fig. 4's
//! `CLUST_SMALLER`/`CLUST_RESULT` arrays; building them costs `O(N)` kernel
//! work per query.  In a serving setting the same join over the same
//! relations arrives again and again (zipfian relation popularity), so this
//! cache keeps the [`PreparedProjection`] products in a byte-budgeted LRU
//! keyed by `(relation ids, projection codes, cluster spec)`.  Entries are
//! `Arc`-shared: a hit hands the running query the same immutable prefix any
//! number of concurrent runs may stream from, and eviction only drops the
//! cache's reference — in-flight runs keep theirs alive.

use crate::registry::RelationId;
use rdx_core::cluster::RadixClusterSpec;
use rdx_core::strategy::DsmPostProjection;
use rdx_exec::PreparedProjection;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: *what data* (relation ids), *which order* (projection codes —
/// the first-side code fixes the result order the prefix encodes) and
/// *which clustering* ([`RadixClusterSpec`] — the granularity the second
/// side was radix-clustered to).  Requests agreeing on all three can share
/// one prepared prefix byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterKey {
    /// The larger (probing) relation.
    pub larger: RelationId,
    /// The smaller (build) relation.
    pub smaller: RelationId,
    /// The projection codes the prefix was prepared for.
    pub plan: DsmPostProjection,
    /// The second-side clustering configuration.
    pub cluster: RadixClusterSpec,
}

#[derive(Debug)]
struct Slot {
    prepared: Arc<PreparedProjection>,
    bytes: usize,
    last_used: u64,
}

/// Hit/miss/eviction counters, readable at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build the prefix.
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: usize,
}

/// A byte-budgeted LRU over prepared projection prefixes.
#[derive(Debug)]
pub struct ClusterCache {
    capacity_bytes: usize,
    slots: HashMap<ClusterKey, Slot>,
    tick: u64,
    stats: CacheStats,
}

impl ClusterCache {
    /// A cache holding at most `capacity_bytes` of prepared prefixes.
    /// Zero disables caching entirely (every lookup is a miss and nothing
    /// is retained) — the serving layer's "cold" mode.
    pub fn new(capacity_bytes: usize) -> Self {
        ClusterCache {
            capacity_bytes,
            slots: HashMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns the prefix for `key`, building it with `build` on a miss.
    /// The boolean is `true` on a hit.
    ///
    /// A freshly built prefix is admitted only if it fits the byte budget
    /// (evicting least-recently-used entries as needed); an oversized prefix
    /// is returned to the caller but never retained, so one giant join
    /// cannot wipe the whole cache for nothing.
    pub fn get_or_prepare(
        &mut self,
        key: ClusterKey,
        build: impl FnOnce() -> PreparedProjection,
    ) -> (Arc<PreparedProjection>, bool) {
        self.tick += 1;
        if let Some(slot) = self.slots.get_mut(&key) {
            slot.last_used = self.tick;
            self.stats.hits += 1;
            return (Arc::clone(&slot.prepared), true);
        }
        self.stats.misses += 1;
        let prepared = Arc::new(build());
        let bytes = prepared.resident_bytes();
        if bytes <= self.capacity_bytes {
            self.evict_until_fits(bytes);
            self.stats.resident_bytes += bytes;
            self.slots.insert(
                key,
                Slot {
                    prepared: Arc::clone(&prepared),
                    bytes,
                    last_used: self.tick,
                },
            );
        }
        (prepared, false)
    }

    /// Drops entries, least recently used first, until `incoming` more bytes
    /// fit the budget.
    fn evict_until_fits(&mut self, incoming: usize) {
        while self.stats.resident_bytes + incoming > self.capacity_bytes {
            let Some((&victim, _)) = self.slots.iter().min_by_key(|(_, s)| s.last_used) else {
                break;
            };
            let Some(slot) = self.slots.remove(&victim) else {
                break; // key just came out of this very map; defend anyway
            };
            self.stats.resident_bytes -= slot.bytes;
            self.stats.evictions += 1;
        }
    }

    /// Evicts **everything** — the fault-injection hook behind
    /// [`rdx_core::fault::FaultAction::EvictCache`], and a sharp tool for
    /// operators shedding memory.  Counts each dropped entry as an eviction.
    /// In-flight runs holding `Arc`s to a dropped prefix keep streaming from
    /// it unaffected; only the cache's references are released.
    pub fn clear(&mut self) {
        self.stats.evictions += self.slots.len() as u64;
        self.stats.resident_bytes = 0;
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_cache::CacheParams;
    use rdx_core::strategy::{ProjectionCode, SecondSideCode};
    use rdx_exec::{ExecPolicy, ProjectionPipeline};
    use rdx_workload::JoinWorkloadBuilder;

    fn prepared_for(n: usize, seed: u64) -> PreparedProjection {
        let w = JoinWorkloadBuilder::equal(n, 1).seed(seed).build();
        let pipeline = ProjectionPipeline::new(DsmPostProjection::with_codes(
            ProjectionCode::PartialCluster,
            SecondSideCode::Decluster,
        ));
        pipeline.prepare(
            &w.larger,
            &w.smaller,
            &CacheParams::tiny_for_tests(),
            &ExecPolicy::sequential(),
        )
    }

    fn key(a: u32, b: u32) -> ClusterKey {
        ClusterKey {
            larger: RelationId(a),
            smaller: RelationId(b),
            plan: DsmPostProjection::with_codes(
                ProjectionCode::PartialCluster,
                SecondSideCode::Decluster,
            ),
            cluster: RadixClusterSpec::single_pass(3),
        }
    }

    #[test]
    fn hit_after_miss_shares_the_same_prefix() {
        let mut cache = ClusterCache::new(1 << 20);
        let (first, hit) = cache.get_or_prepare(key(0, 1), || prepared_for(256, 1));
        assert!(!hit);
        let (second, hit) = cache.get_or_prepare(key(0, 1), || panic!("must not rebuild"));
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.resident_bytes, first.resident_bytes());
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        // Budget sized for roughly two of the three prefixes.
        let one = prepared_for(512, 2).resident_bytes();
        let mut cache = ClusterCache::new(2 * one + one / 2);
        cache.get_or_prepare(key(0, 1), || prepared_for(512, 2));
        cache.get_or_prepare(key(2, 3), || prepared_for(512, 3));
        // Touch the first so the second becomes the LRU victim.
        cache.get_or_prepare(key(0, 1), || panic!("hit expected"));
        cache.get_or_prepare(key(4, 5), || prepared_for(512, 4));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().resident_bytes <= cache.capacity_bytes());
        // The touched entry survived; the untouched one was evicted.
        cache.get_or_prepare(key(0, 1), || panic!("lru victim was wrong"));
        let (_, hit) = cache.get_or_prepare(key(2, 3), || prepared_for(512, 3));
        assert!(!hit);
    }

    #[test]
    fn oversized_entries_are_served_but_never_retained() {
        let mut cache = ClusterCache::new(8);
        let (prepared, hit) = cache.get_or_prepare(key(0, 1), || prepared_for(512, 5));
        assert!(!hit);
        assert!(prepared.resident_bytes() > 8);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().resident_bytes, 0);
        // Zero capacity = caching disabled.
        let mut off = ClusterCache::new(0);
        off.get_or_prepare(key(0, 1), || prepared_for(256, 6));
        let (_, hit) = off.get_or_prepare(key(0, 1), || prepared_for(256, 6));
        assert!(!hit);
        assert_eq!(off.stats().misses, 2);
    }

    #[test]
    fn clear_evicts_everything_but_live_arcs_survive() {
        let mut cache = ClusterCache::new(1 << 20);
        let (held, _) = cache.get_or_prepare(key(0, 1), || prepared_for(128, 8));
        cache.get_or_prepare(key(2, 3), || prepared_for(128, 9));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.stats().resident_bytes, 0);
        // The held Arc still streams; the next lookup rebuilds.
        assert!(held.result_rows() > 0);
        let (_, hit) = cache.get_or_prepare(key(0, 1), || prepared_for(128, 8));
        assert!(!hit);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let mut cache = ClusterCache::new(1 << 20);
        cache.get_or_prepare(key(0, 1), || prepared_for(128, 7));
        // Same relations, different codes → different prefix.
        let other = ClusterKey {
            plan: DsmPostProjection::with_codes(
                ProjectionCode::Unsorted,
                SecondSideCode::Decluster,
            ),
            ..key(0, 1)
        };
        let (_, hit) = cache.get_or_prepare(other, || prepared_for(128, 7));
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }
}
