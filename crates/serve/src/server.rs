//! The serving front: [`RdxServer`] accepts batches of [`ServerRequest`]s
//! over registered relations and runs them **concurrently** — admission
//! control splits the global memory budget, the stride scheduler interleaves
//! pipeline chunks, and the clustered-join-index cache short-circuits the
//! expensive prepared prefix for repeated joins.
//!
//! Concurrency here is *chunk interleaving*, not threads-per-query: each
//! query is a parked [`rdx_exec::PipelineRun`] (a `QuerySession`) and the
//! serving loop steps one chunk of one query at a time (each chunk is
//! itself morsel-parallel across the configured worker threads).  That
//! keeps the whole layer deterministic — the conformance guarantee is that
//! any interleaving produces results byte-identical to running every query
//! alone — while still bounding memory (admission) and tail latency
//! (fair scheduling).

use crate::admission::{AdmissionController, AdmissionDecision};
use crate::cache::{CacheStats, ClusterCache, ClusterKey};
use crate::registry::{Catalog, RelationId};
use crate::scheduler::{ChunkScheduler, FairnessPolicy};
use rdx_cache::CacheParams;
use rdx_core::budget::{BudgetError, MemoryBudget};
use rdx_core::strategy::planner::{
    plan_by_cost_with_threads, predict_streaming_cost, streaming_bytes_per_row,
};
use rdx_core::strategy::{DsmPostProjection, MaterializeSink, QuerySpec};
use rdx_dsm::{DsmRelation, ResultRelation};
use rdx_exec::{ChunkScratch, DsmPipelineRun, ExecPolicy, ProjectionPipeline};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The modeled memory hierarchy (planning input).
    pub params: CacheParams,
    /// Global memory budget split across admitted queries.
    pub global_budget: MemoryBudget,
    /// Maximum concurrently admitted queries.
    pub max_concurrent: usize,
    /// Worker threads each chunk runs on (`0` = auto-detect).
    pub threads_per_query: usize,
    /// Byte budget of the clustered-join-index cache (`0` disables it).
    pub cache_bytes: usize,
    /// How the chunk scheduler weighs queries.
    pub fairness: FairnessPolicy,
    /// How many ways the shared cache is assumed split when *planning*
    /// (codes, cluster specs, predicted costs).  `None` — the default —
    /// uses `max_concurrent`.  Pinning it explicitly keeps plans, cluster
    /// specs and hence cache keys identical across servers with different
    /// concurrency settings, which is also what lets the conformance grid
    /// compare a serial and a concurrent server byte for byte.
    pub plan_shares: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            params: CacheParams::paper_pentium4(),
            global_budget: MemoryBudget::unbounded(),
            max_concurrent: 4,
            threads_per_query: 1,
            cache_bytes: 64 << 20,
            fairness: FairnessPolicy::CostWeighted,
            plan_shares: None,
        }
    }
}

/// One projection query over registered relations: the serving-layer form
/// of the paper's `SELECT a₁.. b₁.. FROM larger, smaller WHERE key = key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerRequest {
    /// The larger (probing) relation.
    pub larger: RelationId,
    /// The smaller (build) relation.
    pub smaller: RelationId,
    /// Columns projected from each side.
    pub spec: QuerySpec,
    /// Optional per-query cap, applied on top of the admission grant.
    pub budget_hint: Option<MemoryBudget>,
}

impl ServerRequest {
    /// A request projecting `spec` from the pair `(larger, smaller)`.
    pub fn new(larger: RelationId, smaller: RelationId, spec: QuerySpec) -> Self {
        ServerRequest {
            larger,
            smaller,
            spec,
            budget_hint: None,
        }
    }

    /// Caps this query's share at `budget` even if admission offers more.
    pub fn with_budget_hint(mut self, budget: MemoryBudget) -> Self {
        self.budget_hint = Some(budget);
        self
    }
}

/// Why a request could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// A named relation is not registered.
    UnknownRelation(RelationId),
    /// The spec projects more columns than a relation has.
    TooManyColumns {
        /// The offending relation.
        relation: RelationId,
        /// Columns requested.
        requested: usize,
        /// Columns available.
        available: usize,
    },
    /// The global budget (or the request's own hint) cannot hold one
    /// resident result row.
    Budget(BudgetError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownRelation(id) => write!(f, "unknown relation {id}"),
            ServeError::TooManyColumns {
                relation,
                requested,
                available,
            } => write!(
                f,
                "{relation} has {available} columns, {requested} requested"
            ),
            ServeError::Budget(e) => write!(f, "inadmissible budget: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-query execution statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryStats {
    /// The projection codes the planner chose.
    pub plan: DsmPostProjection,
    /// Whether the prepared prefix came from the clustered-index cache.
    pub cache_hit: bool,
    /// Whether this query's chunk loop started on warmed scratch buffers
    /// handed down from an earlier query in the batch (the server's scratch
    /// pool), instead of growing its own.
    pub scratch_reused: bool,
    /// The admitted budget share (`usize::MAX` when unbounded).
    pub share_bytes: usize,
    /// Whether admission granted less than the fair share (tighter chunks).
    pub replanned: bool,
    /// Chunks the scheduler ran for this query.
    pub chunks: usize,
    /// Result rows produced.
    pub rows: usize,
    /// Largest observed per-chunk working set, bytes.
    pub peak_chunk_bytes: usize,
    /// Predicted *per-chunk* second-side streaming cost at this query's
    /// cache share, in modeled milliseconds (the total streaming prediction
    /// divided by the planned chunk count) — the stride the cost-weighted
    /// scheduler charges per dispatched chunk.
    pub predicted_chunk_cost_ms: f64,
    /// Time from batch start to admission.
    pub wait: Duration,
    /// Time from admission to completion (interleaved wall clock).
    pub service: Duration,
}

/// A completed request: the materialised result plus its statistics.
#[derive(Debug)]
pub struct QueryResult {
    /// The projected result relation.
    pub result: ResultRelation,
    /// Execution statistics.
    pub stats: QueryStats,
}

/// The outcome of one request in a batch.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The request as submitted.
    pub request: ServerRequest,
    /// The result, or why it was refused.
    pub outcome: Result<QueryResult, ServeError>,
}

/// Batch-level statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Peak over time of `Σ` active queries' planned working-set bounds —
    /// the number the "admission never over-commits" guarantee is asserted
    /// against (`≤ global_budget` whenever the budget is bounded).
    pub peak_concurrent_bytes: usize,
    /// Most queries in flight at once.
    pub peak_concurrency: usize,
    /// Total chunks dispatched.
    pub chunks_dispatched: u64,
    /// Queries that started on pooled (already warmed) chunk scratch.
    pub scratch_reuses: u64,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Clustered-index cache counters after the batch.
    pub cache: CacheStats,
}

/// A served batch: per-request outcomes (in request order) plus batch stats.
#[derive(Debug)]
pub struct BatchReport {
    /// One outcome per submitted request, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Batch-level statistics.
    pub stats: BatchStats,
}

/// One admitted, in-flight query: a parked resumable pipeline run plus its
/// sink and accounting — the session state the scheduler interleaves.
struct QuerySession<'a> {
    request_index: usize,
    request: ServerRequest,
    run: DsmPipelineRun<'a>,
    sink: MaterializeSink,
    share: MemoryBudget,
    stats: QueryStats,
    admitted_at: Instant,
}

/// The multi-query serving layer.
///
/// ```
/// use rdx_serve::{RdxServer, ServeConfig, ServerRequest};
/// use rdx_core::strategy::QuerySpec;
/// use rdx_workload::JoinWorkloadBuilder;
///
/// let mut server = RdxServer::new(ServeConfig::default());
/// let w = JoinWorkloadBuilder::equal(2_000, 1).build();
/// let larger = server.register(w.larger.clone());
/// let smaller = server.register(w.smaller.clone());
/// let report = server.run_batch(&[ServerRequest::new(larger, smaller, QuerySpec::symmetric(1))]);
/// let result = report.outcomes[0].outcome.as_ref().unwrap();
/// assert_eq!(result.result.cardinality(), w.expected_matches);
/// ```
pub struct RdxServer {
    config: ServeConfig,
    catalog: Catalog,
    cache: ClusterCache,
    shared_params: CacheParams,
    /// Warmed [`ChunkScratch`] arenas harvested from completed queries and
    /// handed to newly admitted ones, so a batch of queries pays the chunk
    /// working-buffer growth once instead of per query.  Bounded by
    /// `max_concurrent` (at most that many queries can hold scratch at
    /// once, so a larger pool could never be drained).
    scratch_pool: Vec<ChunkScratch>,
}

impl RdxServer {
    /// A server with an empty catalog and a cold cache.
    ///
    /// # Panics
    /// Panics if `config.max_concurrent == 0`.
    pub fn new(config: ServeConfig) -> Self {
        assert!(config.max_concurrent >= 1, "must serve at least one query");
        // Every per-query plan is priced and clustered against a 1/k share
        // of the cache — conservative when fewer queries are active, but it
        // keeps cluster specs (and so cache keys) stable across admission
        // states.
        let shares = config.plan_shares.unwrap_or(config.max_concurrent).max(1);
        let shared_params = config.params.per_query_share(shares);
        RdxServer {
            shared_params,
            catalog: Catalog::new(),
            cache: ClusterCache::new(config.cache_bytes),
            scratch_pool: Vec::new(),
            config,
        }
    }

    /// Registers a relation for querying.
    pub fn register(&mut self, relation: DsmRelation) -> RelationId {
        self.catalog.register(relation)
    }

    /// The catalog of registered relations.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The configuration this server runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Clustered-index cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The per-query cache share plans are priced against.
    pub fn shared_params(&self) -> &CacheParams {
        &self.shared_params
    }

    /// Serves a batch of concurrent requests to completion.
    ///
    /// Requests are admitted in submission order (FIFO — admission never
    /// skips the queue head, so arrival order bounds waiting); admitted
    /// queries progress one chunk at a time under the fairness policy.  The
    /// report carries one outcome per request, in submission order.
    pub fn run_batch(&mut self, requests: &[ServerRequest]) -> BatchReport {
        let started = Instant::now();
        let config = &self.config;
        let shared_params = &self.shared_params;
        let catalog = &self.catalog;
        let cache = &mut self.cache;
        let scratch_pool = &mut self.scratch_pool;

        let mut admission = AdmissionController::new(config.global_budget, config.max_concurrent);
        let mut scheduler = ChunkScheduler::new(config.fairness);
        let mut outcomes: Vec<Option<QueryOutcome>> = Vec::new();
        outcomes.resize_with(requests.len(), || None);
        let mut stats = BatchStats::default();

        // Validate up front: invalid requests fail fast and never occupy a
        // queue slot.
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (i, request) in requests.iter().enumerate() {
            match validate(catalog, request) {
                Ok(()) => queue.push_back(i),
                Err(e) => {
                    outcomes[i] = Some(QueryOutcome {
                        request: *request,
                        outcome: Err(e),
                    })
                }
            }
        }

        let mut sessions: Vec<QuerySession<'_>> = Vec::new();
        loop {
            // Admit from the queue head while budget and slots allow.
            while let Some(&next) = queue.front() {
                let request = requests[next];
                let effective_row_bytes = streaming_bytes_per_row(&request.spec);
                // A hint below the one-row floor can never run; reject before
                // it holds up the queue.
                if let Some(hint) = request.budget_hint {
                    if let Err(e) = hint.check_one_row(effective_row_bytes) {
                        queue.pop_front();
                        outcomes[next] = Some(QueryOutcome {
                            request,
                            outcome: Err(ServeError::Budget(e)),
                        });
                        continue;
                    }
                }
                match admission.try_admit(effective_row_bytes) {
                    AdmissionDecision::Queue => break,
                    AdmissionDecision::Reject(e) => {
                        queue.pop_front();
                        outcomes[next] = Some(QueryOutcome {
                            request,
                            outcome: Err(ServeError::Budget(e)),
                        });
                    }
                    AdmissionDecision::Admit { share, replanned } => {
                        queue.pop_front();
                        let mut session = admit(
                            next,
                            request,
                            share,
                            replanned,
                            catalog,
                            cache,
                            shared_params,
                            config,
                            started,
                        );
                        // Warm start: hand down scratch harvested from an
                        // earlier query in this batch, if any.
                        if let Some(scratch) = scratch_pool.pop() {
                            session.run.attach_scratch(scratch);
                            session.stats.scratch_reused = true;
                            stats.scratch_reuses += 1;
                        }
                        scheduler.add(next, session.stats.predicted_chunk_cost_ms);
                        sessions.push(session);
                    }
                }
            }

            stats.peak_concurrency = stats.peak_concurrency.max(sessions.len());
            let concurrent_bytes: usize = sessions
                .iter()
                .map(|s| s.run.streaming().max_working_set_bytes())
                .sum();
            stats.peak_concurrent_bytes = stats.peak_concurrent_bytes.max(concurrent_bytes);
            if config.global_budget.is_bounded() {
                debug_assert!(concurrent_bytes <= config.global_budget.limit_bytes());
            }

            // One chunk of one query, per the fairness policy.
            let Some(id) = scheduler.dispatch() else {
                debug_assert!(queue.is_empty(), "queued work with nothing admitted");
                break;
            };
            let pos = sessions
                .iter()
                .position(|s| s.request_index == id)
                .expect("scheduled session vanished");
            let session = &mut sessions[pos];
            if session.run.step(&mut session.sink).is_some() {
                stats.chunks_dispatched += 1;
            } else {
                // Completed: account, release the grant, free the slot —
                // and reclaim the warmed chunk scratch for the next query.
                scheduler.remove(id);
                admission.release(session.share);
                let mut session = sessions.swap_remove(pos);
                if scratch_pool.len() < config.max_concurrent {
                    scratch_pool.push(session.run.take_scratch());
                }
                let run_stats = session.run.run_stats();
                session.stats.chunks = run_stats.chunks_emitted;
                session.stats.rows = run_stats.rows_emitted;
                session.stats.peak_chunk_bytes = run_stats.peak_chunk_bytes;
                session.stats.service = session.admitted_at.elapsed();
                outcomes[session.request_index] = Some(QueryOutcome {
                    request: session.request,
                    outcome: Ok(QueryResult {
                        result: session.sink.into_result(),
                        stats: session.stats,
                    }),
                });
            }
        }

        stats.wall = started.elapsed();
        stats.cache = cache.stats();
        BatchReport {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("request left unresolved"))
                .collect(),
            stats,
        }
    }
}

/// Request validation against the catalog.
fn validate(catalog: &Catalog, request: &ServerRequest) -> Result<(), ServeError> {
    let larger = catalog
        .get(request.larger)
        .ok_or(ServeError::UnknownRelation(request.larger))?;
    let smaller = catalog
        .get(request.smaller)
        .ok_or(ServeError::UnknownRelation(request.smaller))?;
    if request.spec.project_larger > larger.width() {
        return Err(ServeError::TooManyColumns {
            relation: request.larger,
            requested: request.spec.project_larger,
            available: larger.width(),
        });
    }
    if request.spec.project_smaller > smaller.width() {
        return Err(ServeError::TooManyColumns {
            relation: request.smaller,
            requested: request.spec.project_smaller,
            available: smaller.width(),
        });
    }
    Ok(())
}

/// Builds the in-flight session for an admitted request: plan codes, cache
/// lookup (or prepare), streaming run under the granted share.
#[allow(clippy::too_many_arguments)]
fn admit<'a>(
    request_index: usize,
    request: ServerRequest,
    share: MemoryBudget,
    replanned: bool,
    catalog: &'a Catalog,
    cache: &mut ClusterCache,
    shared_params: &CacheParams,
    config: &ServeConfig,
    batch_started: Instant,
) -> QuerySession<'a> {
    let larger = catalog.get(request.larger).expect("validated");
    let smaller = catalog.get(request.smaller).expect("validated");
    // The effective budget: the admission grant, tightened by the request's
    // own hint if any (a hint can only shrink the share, never grow it).
    let effective = match request.budget_hint {
        Some(hint) if hint.limit_bytes() < share.limit_bytes() => hint,
        _ => share,
    };
    let policy = ExecPolicy::with_threads(config.threads_per_query).budget(effective);
    let plan = plan_by_cost_with_threads(
        larger,
        smaller,
        &request.spec,
        shared_params,
        policy.worker_threads(),
    );
    // Derived by the same function the prepared prefix itself uses, so the
    // cache key can never drift from what it names.
    let cluster = rdx_exec::dsm_cluster_spec(smaller.cardinality(), shared_params);
    let key = ClusterKey {
        larger: request.larger,
        smaller: request.smaller,
        plan,
        cluster,
    };
    let pipeline = ProjectionPipeline::new(plan);
    let (prepared, cache_hit) = cache.get_or_prepare(key, || {
        pipeline.prepare(larger, smaller, shared_params, &policy)
    });
    let run = DsmPipelineRun::over_dsm(
        prepared,
        larger,
        smaller,
        &request.spec,
        shared_params,
        &policy,
    );
    let predicted_chunk_cost_ms = predict_streaming_cost(
        run.streaming(),
        smaller.cardinality(),
        run.prepared().result_rows(),
        &request.spec,
        shared_params,
    ) / run.streaming().num_chunks.max(1) as f64;
    let admitted_at = Instant::now();
    QuerySession {
        request_index,
        request,
        stats: QueryStats {
            plan,
            cache_hit,
            scratch_reused: false,
            share_bytes: effective.limit_bytes(),
            replanned,
            chunks: 0,
            rows: 0,
            peak_chunk_bytes: 0,
            predicted_chunk_cost_ms,
            wait: admitted_at.duration_since(batch_started),
            service: Duration::ZERO,
        },
        run,
        sink: MaterializeSink::new(),
        share,
        admitted_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_workload::JoinWorkloadBuilder;

    fn test_config(budget: MemoryBudget) -> ServeConfig {
        ServeConfig {
            params: CacheParams::tiny_for_tests(),
            global_budget: budget,
            max_concurrent: 3,
            threads_per_query: 1,
            cache_bytes: 1 << 20,
            fairness: FairnessPolicy::CostWeighted,
            plan_shares: None,
        }
    }

    fn columns(result: &ResultRelation) -> Vec<Vec<i32>> {
        result
            .columns()
            .iter()
            .map(|c| c.as_slice().to_vec())
            .collect()
    }

    #[test]
    fn batch_results_match_the_solo_executor() {
        let w = JoinWorkloadBuilder::equal(1_500, 2).seed(31).build();
        let mut server = RdxServer::new(test_config(MemoryBudget::bytes(8 * 1024)));
        let larger = server.register(w.larger.clone());
        let smaller = server.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(2);
        let requests = vec![ServerRequest::new(larger, smaller, spec); 5];
        let report = server.run_batch(&requests);
        assert_eq!(report.outcomes.len(), 5);
        assert!(report.stats.peak_concurrency >= 2);
        assert!(report.stats.peak_concurrent_bytes <= 8 * 1024);
        for outcome in &report.outcomes {
            let q = outcome.outcome.as_ref().expect("query served");
            // Byte-identical to running the server-chosen plan alone.
            let solo = q
                .stats
                .plan
                .execute(&w.larger, &w.smaller, &spec, server.shared_params());
            assert_eq!(columns(&q.result), columns(&solo.result));
            assert_eq!(q.stats.rows, w.expected_matches);
            assert!(q.stats.chunks >= 1);
            assert!(q.stats.share_bytes <= 8 * 1024);
        }
        // Five identical requests: one miss builds the prefix, four hits.
        assert_eq!(report.stats.cache.misses, 1);
        assert_eq!(report.stats.cache.hits, 4);
        assert!(!report.outcomes[0].outcome.as_ref().unwrap().stats.cache_hit);
        assert!(report.outcomes[4].outcome.as_ref().unwrap().stats.cache_hit);
    }

    #[test]
    fn scratch_pool_hands_warm_buffers_to_later_queries() {
        let w = JoinWorkloadBuilder::equal(1_200, 2).seed(61).build();
        let mut config = test_config(MemoryBudget::bytes(4 * 1024));
        config.max_concurrent = 1; // strictly sequential: reuse is deterministic
        let mut server = RdxServer::new(config);
        let larger = server.register(w.larger.clone());
        let smaller = server.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(2);
        let requests = vec![ServerRequest::new(larger, smaller, spec); 4];
        let report = server.run_batch(&requests);
        // First query grows its scratch; the next three inherit it.
        assert_eq!(report.stats.scratch_reuses, 3);
        assert!(
            !report.outcomes[0]
                .outcome
                .as_ref()
                .unwrap()
                .stats
                .scratch_reused
        );
        for outcome in &report.outcomes[1..] {
            let q = outcome.outcome.as_ref().expect("served");
            assert!(q.stats.scratch_reused);
            assert_eq!(q.stats.rows, w.expected_matches);
        }
        // Reuse is invisible in the results: all four are identical.
        let first = columns(&report.outcomes[0].outcome.as_ref().unwrap().result);
        for outcome in &report.outcomes[1..] {
            assert_eq!(columns(&outcome.outcome.as_ref().unwrap().result), first);
        }
        // The pool persists across batches too.
        let next = server.run_batch(&requests[..1]);
        assert_eq!(next.stats.scratch_reuses, 1);
    }

    #[test]
    fn cache_persists_across_batches() {
        let w = JoinWorkloadBuilder::equal(1_000, 1).seed(13).build();
        let mut server = RdxServer::new(test_config(MemoryBudget::unbounded()));
        let larger = server.register(w.larger.clone());
        let smaller = server.register(w.smaller.clone());
        let request = ServerRequest::new(larger, smaller, QuerySpec::symmetric(1));
        let cold = server.run_batch(&[request]);
        assert!(!cold.outcomes[0].outcome.as_ref().unwrap().stats.cache_hit);
        let warm = server.run_batch(&[request]);
        assert!(warm.outcomes[0].outcome.as_ref().unwrap().stats.cache_hit);
        assert_eq!(
            columns(&cold.outcomes[0].outcome.as_ref().unwrap().result),
            columns(&warm.outcomes[0].outcome.as_ref().unwrap().result),
        );
        assert_eq!(server.cache_stats().hits, 1);
    }

    #[test]
    fn invalid_requests_fail_typed_without_blocking_valid_ones() {
        let w = JoinWorkloadBuilder::equal(600, 1).seed(3).build();
        let mut server = RdxServer::new(test_config(MemoryBudget::bytes(4096)));
        let larger = server.register(w.larger.clone());
        let smaller = server.register(w.smaller.clone());
        let ghost = RelationId(77);
        let spec = QuerySpec::symmetric(1);
        let report = server.run_batch(&[
            ServerRequest::new(ghost, smaller, spec),
            ServerRequest::new(larger, smaller, QuerySpec::symmetric(9)),
            // Hint below one resident row: typed budget error.
            ServerRequest::new(larger, smaller, spec).with_budget_hint(MemoryBudget::bytes(1)),
            ServerRequest::new(larger, smaller, spec),
        ]);
        assert_eq!(
            report.outcomes[0].outcome.as_ref().unwrap_err(),
            &ServeError::UnknownRelation(ghost)
        );
        assert!(matches!(
            report.outcomes[1].outcome.as_ref().unwrap_err(),
            ServeError::TooManyColumns { .. }
        ));
        assert!(matches!(
            report.outcomes[2].outcome.as_ref().unwrap_err(),
            ServeError::Budget(BudgetError::BelowOneRow { .. })
        ));
        let ok = report.outcomes[3].outcome.as_ref().unwrap();
        assert_eq!(ok.stats.rows, w.expected_matches);
        // Errors display something readable.
        assert!(!ServeError::UnknownRelation(ghost).to_string().is_empty());
    }

    #[test]
    fn global_budget_too_small_for_one_row_rejects() {
        let w = JoinWorkloadBuilder::equal(400, 1).seed(9).build();
        let mut config = test_config(MemoryBudget::bytes(4));
        config.max_concurrent = 2;
        let mut server = RdxServer::new(config);
        let larger = server.register(w.larger.clone());
        let smaller = server.register(w.smaller.clone());
        let report =
            server.run_batch(&[ServerRequest::new(larger, smaller, QuerySpec::symmetric(1))]);
        assert!(matches!(
            report.outcomes[0].outcome.as_ref().unwrap_err(),
            ServeError::Budget(BudgetError::BelowOneRow { .. })
        ));
    }
}
