//! The batch serving front: [`RdxServer`] accepts batches of
//! [`ServerRequest`]s over registered relations and runs them
//! **concurrently** — admission control splits the global memory budget, the
//! stride scheduler interleaves pipeline chunks, and the clustered-join-index
//! cache short-circuits the expensive prepared prefix for repeated joins.
//!
//! **Legacy surface**: since the ticket-granular refactor, this whole module
//! is a documented thin wrapper over [`crate::engine::QueryEngine`] —
//! [`RdxServer::run_batch`] submits every request as a ticket, pumps
//! [`QueryEngine::step`] until idle, and takes the outcomes back in
//! submission order.  New code (and the `rdx-api` `Session`/`Query` front
//! door) uses the engine's non-blocking `submit`/`step`/`poll` primitives
//! directly; the batch call remains for callers that want the synchronous
//! all-at-once shape, and its semantics — FIFO admission, fair chunk
//! interleaving, byte-identical results for any interleaving — are exactly
//! the engine's.

use crate::cache::CacheStats;
use crate::engine::{EngineStep, QueryEngine, TicketId};
use crate::registry::{Catalog, RelationId};
use crate::scheduler::FairnessPolicy;
use rdx_cache::CacheParams;
use rdx_core::budget::MemoryBudget;
use rdx_core::error::RdxError;
use rdx_core::fault::RetryPolicy;
use rdx_core::strategy::{AdaptivePolicy, DsmPostProjection, PhaseTimings, QuerySpec};
use rdx_dsm::{DsmRelation, ResultRelation};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The modeled memory hierarchy (planning input).
    pub params: CacheParams,
    /// Global memory budget split across admitted queries.
    pub global_budget: MemoryBudget,
    /// Maximum concurrently admitted queries.
    pub max_concurrent: usize,
    /// Worker threads each chunk runs on (`0` = auto-detect).
    pub threads_per_query: usize,
    /// Byte budget of the clustered-join-index cache (`0` disables it).
    pub cache_bytes: usize,
    /// How the chunk scheduler weighs queries.
    pub fairness: FairnessPolicy,
    /// How many ways the shared cache is assumed split when *planning*
    /// (codes, cluster specs, predicted costs).  `None` — the default —
    /// uses `max_concurrent`.  Pinning it explicitly keeps plans, cluster
    /// specs and hence cache keys identical across servers with different
    /// concurrency settings, which is also what lets the conformance grid
    /// compare a serial and a concurrent server byte for byte.
    pub plan_shares: Option<usize>,
    /// Whether the engine records metrics and per-query trace events
    /// (`rdx-obs`).  Off by default: a disabled engine carries no registry
    /// or trace ring and every record site is one branch, so the
    /// steady-state chunk loop stays allocation-free and observation-free.
    pub observability: bool,
    /// Whether every query runs in cache-truth **profiled** mode: each
    /// emitted chunk's memory-access pattern is replayed through the
    /// simulated [`CacheParams`] hierarchy, recording per-phase spans,
    /// per-chunk miss counts (`profile.*` metrics, `ChunkProfile` trace
    /// events) and feeding adaptive queries *simulated stall time* instead
    /// of wall-clock.  Requires [`ServeConfig::observability`]; output is
    /// byte-identical to unprofiled runs by construction.  Off by default —
    /// the replay costs simulator time, so it is a measurement mode, not a
    /// serving mode.  Per-request opt-in: [`ServerRequest::with_profiled`].
    pub profiled: bool,
    /// Per-tenant admission caps layered on top of [`Self::global_budget`]
    /// (see [`crate::tenant`]): max in-flight queries and max resident
    /// grant bytes per tenant, enforced *before* the global
    /// `per_query_share` and rejected with the typed
    /// [`RdxError::TenantQuota`].  The default is unlimited for every
    /// tenant, so untagged deployments pay nothing.
    pub tenant_quotas: crate::tenant::TenantQuotas,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            params: CacheParams::paper_pentium4(),
            global_budget: MemoryBudget::unbounded(),
            max_concurrent: 4,
            threads_per_query: 1,
            cache_bytes: 64 << 20,
            fairness: FairnessPolicy::CostWeighted,
            plan_shares: None,
            observability: false,
            profiled: false,
            tenant_quotas: crate::tenant::TenantQuotas::default(),
        }
    }
}

impl ServeConfig {
    /// Turns observability on or off (builder form).
    pub fn with_observability(mut self, enabled: bool) -> Self {
        self.observability = enabled;
        self
    }

    /// Turns cache-truth profiling on for every query (builder form);
    /// implies nothing unless observability is also on.
    pub fn with_profiled(mut self, enabled: bool) -> Self {
        self.profiled = enabled;
        self
    }

    /// Installs per-tenant admission quotas (builder form).
    pub fn with_tenant_quotas(mut self, quotas: crate::tenant::TenantQuotas) -> Self {
        self.tenant_quotas = quotas;
        self
    }
}

/// One projection query over registered relations: the serving-layer form
/// of the paper's `SELECT a₁.. b₁.. FROM larger, smaller WHERE key = key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerRequest {
    /// The larger (probing) relation.
    pub larger: RelationId,
    /// The smaller (build) relation.
    pub smaller: RelationId,
    /// Columns projected from each side.
    pub spec: QuerySpec,
    /// Optional per-query cap, applied on top of the admission grant.
    pub budget_hint: Option<MemoryBudget>,
    /// Optional per-query worker-thread count, overriding
    /// [`ServeConfig::threads_per_query`].  Threads change only scheduling,
    /// never bytes, so this cannot affect results.
    pub threads_hint: Option<usize>,
    /// Optional pinned projection codes, bypassing the cost-based planner
    /// (what the conformance grid uses to drive every `u/s/c × u/d` cell
    /// through the one planner entry).
    pub codes: Option<DsmPostProjection>,
    /// Optional runtime-adaptive re-tuning policy.  `None` — the default —
    /// trusts the one-shot plan; `Some` arms the per-chunk
    /// observe→re-plan loop (wall-clock feedback, EWMA + hysteresis, see
    /// `rdx_core::strategy::adapt`).  Adaptation moves only chunk
    /// boundaries, never bytes, so this cannot affect results.
    pub adaptive: Option<AdaptivePolicy>,
    /// Runs this query in cache-truth profiled mode (see
    /// [`ServeConfig::profiled`] for semantics); `false` — the default —
    /// can still be overridden engine-wide by the config flag.
    pub profiled: bool,
    /// Optional completion deadline, nanoseconds of *service time* from
    /// admission.  `Some` arms two enforcement points: admission rejects
    /// the query outright ([`rdx_core::error::DeadlineError::Infeasible`])
    /// when the Appendix-A streaming prediction at its cache share already
    /// exceeds the deadline, and the engine tears down an admitted run at
    /// the first chunk boundary after its consumed service time passes the
    /// deadline ([`rdx_core::error::DeadlineError::Exceeded`]), reclaiming
    /// its budget grant.  Deadlines also feed the scheduler: slack scales
    /// the stride (EDF-flavored), so tight-deadline queries win dispatches.
    pub deadline_ns: Option<u64>,
    /// Scheduling priority, `1` (default) and up: the stride is divided by
    /// the priority, so a priority-2 query receives twice the dispatch
    /// share of a priority-1 peer.  `0` is treated as `1`.  Priorities
    /// change only chunk interleaving, never bytes, so they cannot affect
    /// results.
    pub priority: u32,
    /// Optional retry policy for *recoverable* failures — budget-rejected
    /// admissions and worker panics.  Retries re-enter the admission queue
    /// after an exponential backoff measured in engine drive steps (never
    /// wall-clock), keeping recovery deterministic.  Deadline failures are
    /// never retried.
    pub retry: Option<RetryPolicy>,
    /// The tenant this query is billed to, interned via
    /// [`QueryEngine::tenant_id`].  `None` — the default — bypasses tenant
    /// accounting entirely.  Tagged ticket submissions are checked against
    /// the tenant's [`crate::TenantQuota`] at admission (in-flight cap,
    /// resident-byte cap tightening the grant) and attributed in metrics
    /// and trace; tags change admission and accounting only, never bytes.
    pub tenant: Option<crate::tenant::TenantId>,
}

impl ServerRequest {
    /// A request projecting `spec` from the pair `(larger, smaller)`.
    pub fn new(larger: RelationId, smaller: RelationId, spec: QuerySpec) -> Self {
        ServerRequest {
            larger,
            smaller,
            spec,
            budget_hint: None,
            threads_hint: None,
            codes: None,
            adaptive: None,
            profiled: false,
            deadline_ns: None,
            priority: 1,
            retry: None,
            tenant: None,
        }
    }

    /// Caps this query's share at `budget` even if admission offers more.
    pub fn with_budget_hint(mut self, budget: MemoryBudget) -> Self {
        self.budget_hint = Some(budget);
        self
    }

    /// Runs this query's chunks on `threads` workers (0 = auto-detect).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads_hint = Some(threads);
        self
    }

    /// Pins the projection codes instead of cost-based planning.
    pub fn with_codes(mut self, codes: DsmPostProjection) -> Self {
        self.codes = Some(codes);
        self
    }

    /// Arms runtime-adaptive chunk re-tuning under `policy` (default off).
    pub fn with_adaptive(mut self, policy: AdaptivePolicy) -> Self {
        self.adaptive = Some(policy);
        self
    }

    /// Arms cache-truth profiling for this query (default off).  When the
    /// query is also adaptive, the controller is fed simulated miss-count
    /// stall time instead of wall-clock — deterministic feedback that
    /// survives any container.  Needs engine observability to take effect.
    pub fn with_profiled(mut self) -> Self {
        self.profiled = true;
        self
    }

    /// Sets a completion deadline in nanoseconds of service time (see
    /// [`ServerRequest::deadline_ns`] for the two enforcement points and
    /// the scheduler coupling).
    pub fn with_deadline(mut self, deadline_ns: u64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Sets the scheduling priority (default 1; higher wins more
    /// dispatches; 0 is treated as 1).
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Arms deterministic retry-with-backoff for budget rejections and
    /// worker panics (see [`ServerRequest::retry`]).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Bills this query to `tenant` (see [`ServerRequest::tenant`]).
    pub fn with_tenant(mut self, tenant: crate::tenant::TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }
}

/// Why a request could not be served.
///
/// **Legacy alias**: serving-layer failures are the workspace-wide
/// [`RdxError`] since the one-front-door redesign; catalog failures surface
/// as [`RdxError::UnknownRelation`] / [`RdxError::TooManyColumns`] and
/// budget failures as [`RdxError::Budget`].
pub type ServeError = RdxError;

/// Per-query execution statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryStats {
    /// The process-unique observability query id this execution's trace
    /// events are keyed by — what lets a caller pull one query's lifecycle
    /// out of a `TraceSnapshot` (`events_for`).  Minted even when
    /// observability is disabled (one relaxed atomic), so the field is
    /// always populated.
    pub query_id: u64,
    /// The projection codes the planner chose (or the request pinned).
    pub plan: DsmPostProjection,
    /// Whether the prepared prefix came from the clustered-index cache.
    pub cache_hit: bool,
    /// Whether this query's chunk loop started on warmed scratch buffers
    /// handed down from an earlier query (the engine's scratch pool),
    /// instead of growing its own.
    pub scratch_reused: bool,
    /// The admitted budget share (`usize::MAX` when unbounded).
    pub share_bytes: usize,
    /// Whether admission granted less than the fair share (tighter chunks).
    pub replanned: bool,
    /// Chunks the scheduler ran for this query.
    pub chunks: usize,
    /// Result rows produced.
    pub rows: usize,
    /// Largest observed per-chunk working set, bytes.
    pub peak_chunk_bytes: usize,
    /// Mid-flight re-splits this query's adaptive controller fired (0 when
    /// [`ServerRequest::adaptive`] was off — the default — or when the
    /// hysteresis band held).
    pub adaptive_replans: usize,
    /// Predicted *per-chunk* second-side streaming cost at this query's
    /// cache share, in modeled milliseconds (the total streaming prediction
    /// divided by the planned chunk count) — the stride the cost-weighted
    /// scheduler charges per dispatched chunk.
    pub predicted_chunk_cost_ms: f64,
    /// Wall-clock phase breakdown of the work this query actually paid:
    /// chunk-loop phases always; the join/reorder/cluster prefix only when
    /// this query built it (a cache hit skips it).
    pub timings: PhaseTimings,
    /// Time from submission to admission.
    pub wait: Duration,
    /// Time from admission to completion (interleaved wall clock).
    pub service: Duration,
}

impl QueryStats {
    /// Total wall clock from submission to completion: queue wait plus
    /// interleaved service time.
    pub fn total_wall(&self) -> Duration {
        self.wait + self.service
    }
}

/// A completed request: the materialised result plus its statistics.
#[derive(Debug)]
pub struct QueryResult {
    /// The projected result relation.
    pub result: ResultRelation,
    /// Execution statistics.
    pub stats: QueryStats,
}

/// The outcome of one request in a batch.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The request as submitted.
    pub request: ServerRequest,
    /// The result, or why it was refused.
    pub outcome: Result<QueryResult, RdxError>,
}

/// Batch-level statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Peak over time of `Σ` active queries' planned working-set bounds —
    /// the number the "admission never over-commits" guarantee is asserted
    /// against (`≤ global_budget` whenever the budget is bounded).
    pub peak_concurrent_bytes: usize,
    /// Most queries in flight at once.
    pub peak_concurrency: usize,
    /// Total chunks dispatched.
    pub chunks_dispatched: u64,
    /// Queries that started on pooled (already warmed) chunk scratch.
    pub scratch_reuses: u64,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Clustered-index cache counters after the batch.
    pub cache: CacheStats,
    /// Queries in this batch whose prepared prefix came from the cache.
    pub cache_hits: u64,
    /// Queries in this batch that had to build their prepared prefix.
    pub cache_misses: u64,
    /// Queries granted a budget share and resolved in this batch.
    pub admissions: u64,
    /// Queries refused with a typed error in this batch.
    pub rejections: u64,
    /// Admissions granted less than the fair share (tighter chunking).
    pub replans: u64,
    /// Mid-flight re-splits fired by adaptive queries in this batch.
    pub adaptive_replans: u64,
    /// Of [`BatchStats::rejections`]: refused because the budget could not
    /// admit them (load shedding).
    pub budget_rejects: u64,
    /// Of [`BatchStats::rejections`]: refused at admission because their
    /// deadline was infeasible at the granted share.
    pub deadline_rejects: u64,
    /// Queries torn down mid-flight — caller cancellations plus deadline
    /// enforcement — with their budget grants reclaimed.
    pub cancellations: u64,
    /// Queries that failed because a morsel worker panicked while running
    /// one of their chunks (concurrent queries are unaffected).
    pub worker_panics: u64,
    /// Retry attempts re-queued under a [`ServerRequest::retry`] policy.
    pub retries: u64,
    /// Of [`BatchStats::rejections`]: refused at admission because the
    /// requesting tenant was over its [`crate::TenantQuota`].
    pub tenant_quota_rejects: u64,
}

/// A served batch: per-request outcomes (in request order) plus batch stats.
#[derive(Debug)]
pub struct BatchReport {
    /// One outcome per submitted request, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Batch-level statistics.
    pub stats: BatchStats,
}

/// The multi-query serving layer.
///
/// ```
/// use rdx_serve::{RdxServer, ServeConfig, ServerRequest};
/// use rdx_core::strategy::QuerySpec;
/// use rdx_workload::JoinWorkloadBuilder;
///
/// let mut server = RdxServer::new(ServeConfig::default());
/// let w = JoinWorkloadBuilder::equal(2_000, 1).build();
/// let larger = server.register(w.larger.clone());
/// let smaller = server.register(w.smaller.clone());
/// let report = server.run_batch(&[ServerRequest::new(larger, smaller, QuerySpec::symmetric(1))]);
/// let result = report.outcomes[0].outcome.as_ref().unwrap();
/// assert_eq!(result.result.cardinality(), w.expected_matches);
/// ```
pub struct RdxServer {
    engine: QueryEngine,
}

impl RdxServer {
    /// A server with an empty catalog and a cold cache.
    ///
    /// # Panics
    /// Panics if `config.max_concurrent == 0`.
    pub fn new(config: ServeConfig) -> Self {
        RdxServer {
            engine: QueryEngine::new(config),
        }
    }

    /// Registers a relation for querying.
    pub fn register(&mut self, relation: DsmRelation) -> RelationId {
        self.engine.register(relation)
    }

    /// The catalog of registered relations.
    pub fn catalog(&self) -> &Catalog {
        self.engine.catalog()
    }

    /// The configuration this server runs under.
    pub fn config(&self) -> &ServeConfig {
        self.engine.config()
    }

    /// Clustered-index cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// The per-query cache share plans are priced against.
    pub fn shared_params(&self) -> &CacheParams {
        self.engine.shared_params()
    }

    /// The ticket-granular engine underneath — for callers outgrowing the
    /// batch shape (non-blocking submission, polling, incremental driving).
    ///
    /// The engine is *shared* with [`RdxServer::run_batch`]: a subsequent
    /// batch call drives any ticket still open here to completion alongside
    /// its own (outcomes stay claimable by their tickets, results are
    /// unaffected), and the batch's [`BatchStats`] then include that work.
    /// Mix the two surfaces only if that accounting is acceptable —
    /// otherwise drain tickets first or use separate servers.
    pub fn engine_mut(&mut self) -> &mut QueryEngine {
        &mut self.engine
    }

    /// Serves a batch of concurrent requests to completion.
    ///
    /// **Legacy surface**: a documented thin wrapper over the ticket
    /// primitives — every request becomes a [`QueryEngine::submit`] ticket,
    /// the engine is stepped until [`EngineStep::Idle`], and the outcomes
    /// are taken back in submission order.  Requests are admitted in
    /// submission order (FIFO — admission never skips the queue head, so
    /// arrival order bounds waiting); admitted queries progress one chunk
    /// at a time under the fairness policy.
    ///
    /// Tickets already open on the shared engine (via
    /// [`RdxServer::engine_mut`]) are driven along with the batch and
    /// counted in its [`BatchStats`]; see `engine_mut` for the contract.
    pub fn run_batch(&mut self, requests: &[ServerRequest]) -> BatchReport {
        let started = Instant::now();
        // Per-batch counter semantics: peaks and totals restart here.
        self.engine.reset_stats();
        let tickets: Vec<TicketId> = requests.iter().map(|r| self.engine.submit(*r)).collect();
        while self.engine.step() != EngineStep::Idle {}
        let outcomes = tickets
            .into_iter()
            .zip(requests)
            .map(|(t, r)| {
                // Every submitted ticket resolves before the engine goes
                // idle; a missing outcome (impossible today) degrades to a
                // typed unknown-ticket error instead of a panic.
                self.engine.take_outcome(t).unwrap_or_else(|| QueryOutcome {
                    request: *r,
                    outcome: Err(RdxError::UnknownTicket { ticket: t.raw() }),
                })
            })
            .collect();
        let engine_stats = self.engine.stats();
        BatchReport {
            outcomes,
            stats: BatchStats {
                peak_concurrent_bytes: engine_stats.peak_concurrent_bytes,
                peak_concurrency: engine_stats.peak_concurrency,
                chunks_dispatched: engine_stats.chunks_dispatched,
                scratch_reuses: engine_stats.scratch_reuses,
                wall: started.elapsed(),
                cache: self.engine.cache_stats(),
                cache_hits: engine_stats.cache_hits,
                cache_misses: engine_stats.cache_misses,
                admissions: engine_stats.admissions,
                rejections: engine_stats.rejections,
                replans: engine_stats.replans,
                adaptive_replans: engine_stats.adaptive_replans,
                budget_rejects: engine_stats.budget_rejects,
                deadline_rejects: engine_stats.deadline_rejects,
                cancellations: engine_stats.cancellations,
                worker_panics: engine_stats.worker_panics,
                retries: engine_stats.retries,
                tenant_quota_rejects: engine_stats.tenant_quota_rejects,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_core::budget::BudgetError;
    use rdx_workload::JoinWorkloadBuilder;

    fn test_config(budget: MemoryBudget) -> ServeConfig {
        ServeConfig {
            params: CacheParams::tiny_for_tests(),
            global_budget: budget,
            max_concurrent: 3,
            threads_per_query: 1,
            cache_bytes: 1 << 20,
            fairness: FairnessPolicy::CostWeighted,
            plan_shares: None,
            observability: false,
            profiled: false,
            tenant_quotas: crate::tenant::TenantQuotas::default(),
        }
    }

    fn columns(result: &ResultRelation) -> Vec<Vec<i32>> {
        result
            .columns()
            .iter()
            .map(|c| c.as_slice().to_vec())
            .collect()
    }

    #[test]
    fn batch_results_match_the_solo_executor() {
        let w = JoinWorkloadBuilder::equal(1_500, 2).seed(31).build();
        let mut server = RdxServer::new(test_config(MemoryBudget::bytes(8 * 1024)));
        let larger = server.register(w.larger.clone());
        let smaller = server.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(2);
        let requests = vec![ServerRequest::new(larger, smaller, spec); 5];
        let report = server.run_batch(&requests);
        assert_eq!(report.outcomes.len(), 5);
        assert!(report.stats.peak_concurrency >= 2);
        assert!(report.stats.peak_concurrent_bytes <= 8 * 1024);
        for outcome in &report.outcomes {
            let q = outcome.outcome.as_ref().expect("query served");
            // Byte-identical to running the server-chosen plan alone.
            let solo = q
                .stats
                .plan
                .execute(&w.larger, &w.smaller, &spec, server.shared_params());
            assert_eq!(columns(&q.result), columns(&solo.result));
            assert_eq!(q.stats.rows, w.expected_matches);
            assert!(q.stats.chunks >= 1);
            assert!(q.stats.share_bytes <= 8 * 1024);
        }
        // Five identical requests: one miss builds the prefix, four hits.
        assert_eq!(report.stats.cache.misses, 1);
        assert_eq!(report.stats.cache.hits, 4);
        assert!(!report.outcomes[0].outcome.as_ref().unwrap().stats.cache_hit);
        assert!(report.outcomes[4].outcome.as_ref().unwrap().stats.cache_hit);
        // Only the cache-missing query paid the prefix build time.
        let miss = report.outcomes[0].outcome.as_ref().unwrap();
        assert!(miss.stats.timings.join.as_nanos() > 0);
        let hit = report.outcomes[4].outcome.as_ref().unwrap();
        assert_eq!(hit.stats.timings.join, Duration::ZERO);
    }

    #[test]
    fn scratch_pool_hands_warm_buffers_to_later_queries() {
        let w = JoinWorkloadBuilder::equal(1_200, 2).seed(61).build();
        let mut config = test_config(MemoryBudget::bytes(4 * 1024));
        config.max_concurrent = 1; // strictly sequential: reuse is deterministic
        let mut server = RdxServer::new(config);
        let larger = server.register(w.larger.clone());
        let smaller = server.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(2);
        let requests = vec![ServerRequest::new(larger, smaller, spec); 4];
        let report = server.run_batch(&requests);
        // First query grows its scratch; the next three inherit it.
        assert_eq!(report.stats.scratch_reuses, 3);
        assert!(
            !report.outcomes[0]
                .outcome
                .as_ref()
                .unwrap()
                .stats
                .scratch_reused
        );
        for outcome in &report.outcomes[1..] {
            let q = outcome.outcome.as_ref().expect("served");
            assert!(q.stats.scratch_reused);
            assert_eq!(q.stats.rows, w.expected_matches);
        }
        // Reuse is invisible in the results: all four are identical.
        let first = columns(&report.outcomes[0].outcome.as_ref().unwrap().result);
        for outcome in &report.outcomes[1..] {
            assert_eq!(columns(&outcome.outcome.as_ref().unwrap().result), first);
        }
        // The pool persists across batches too.
        let next = server.run_batch(&requests[..1]);
        assert_eq!(next.stats.scratch_reuses, 1);
    }

    #[test]
    fn cache_persists_across_batches() {
        let w = JoinWorkloadBuilder::equal(1_000, 1).seed(13).build();
        let mut server = RdxServer::new(test_config(MemoryBudget::unbounded()));
        let larger = server.register(w.larger.clone());
        let smaller = server.register(w.smaller.clone());
        let request = ServerRequest::new(larger, smaller, QuerySpec::symmetric(1));
        let cold = server.run_batch(&[request]);
        assert!(!cold.outcomes[0].outcome.as_ref().unwrap().stats.cache_hit);
        let warm = server.run_batch(&[request]);
        assert!(warm.outcomes[0].outcome.as_ref().unwrap().stats.cache_hit);
        assert_eq!(
            columns(&cold.outcomes[0].outcome.as_ref().unwrap().result),
            columns(&warm.outcomes[0].outcome.as_ref().unwrap().result),
        );
        assert_eq!(server.cache_stats().hits, 1);
    }

    #[test]
    fn invalid_requests_fail_typed_without_blocking_valid_ones() {
        let w = JoinWorkloadBuilder::equal(600, 1).seed(3).build();
        let mut server = RdxServer::new(test_config(MemoryBudget::bytes(4096)));
        let larger = server.register(w.larger.clone());
        let smaller = server.register(w.smaller.clone());
        let ghost = RelationId(77);
        let spec = QuerySpec::symmetric(1);
        let report = server.run_batch(&[
            ServerRequest::new(ghost, smaller, spec),
            ServerRequest::new(larger, smaller, QuerySpec::symmetric(9)),
            // Hint below one resident row: typed budget error.
            ServerRequest::new(larger, smaller, spec).with_budget_hint(MemoryBudget::bytes(1)),
            ServerRequest::new(larger, smaller, spec),
        ]);
        assert_eq!(
            report.outcomes[0].outcome.as_ref().unwrap_err(),
            &RdxError::UnknownRelation { id: ghost.raw() }
        );
        assert!(matches!(
            report.outcomes[1].outcome.as_ref().unwrap_err(),
            RdxError::TooManyColumns { .. }
        ));
        assert!(matches!(
            report.outcomes[2].outcome.as_ref().unwrap_err(),
            RdxError::Budget(BudgetError::BelowOneRow { .. })
        ));
        let ok = report.outcomes[3].outcome.as_ref().unwrap();
        assert_eq!(ok.stats.rows, w.expected_matches);
        // Errors display something readable.
        assert!(!RdxError::UnknownRelation { id: ghost.raw() }
            .to_string()
            .is_empty());
    }

    #[test]
    fn global_budget_too_small_for_one_row_rejects() {
        let w = JoinWorkloadBuilder::equal(400, 1).seed(9).build();
        let mut config = test_config(MemoryBudget::bytes(4));
        config.max_concurrent = 2;
        let mut server = RdxServer::new(config);
        let larger = server.register(w.larger.clone());
        let smaller = server.register(w.smaller.clone());
        let report =
            server.run_batch(&[ServerRequest::new(larger, smaller, QuerySpec::symmetric(1))]);
        assert!(matches!(
            report.outcomes[0].outcome.as_ref().unwrap_err(),
            RdxError::Budget(BudgetError::BelowOneRow { .. })
        ));
    }

    #[test]
    fn request_hints_flow_through_the_batch_path() {
        let w = JoinWorkloadBuilder::equal(900, 1).seed(17).build();
        let mut server = RdxServer::new(test_config(MemoryBudget::bytes(64 * 1024)));
        let larger = server.register(w.larger.clone());
        let smaller = server.register(w.smaller.clone());
        let spec = QuerySpec::symmetric(1);
        let pinned = DsmPostProjection::with_codes(
            rdx_core::strategy::ProjectionCode::Unsorted,
            rdx_core::strategy::SecondSideCode::Decluster,
        );
        let report = server.run_batch(&[ServerRequest::new(larger, smaller, spec)
            .with_codes(pinned)
            .with_threads(2)
            .with_budget_hint(MemoryBudget::bytes(256))]);
        let q = report.outcomes[0].outcome.as_ref().expect("served");
        assert_eq!(q.stats.plan, pinned);
        // The hint tightened the share below the fair split.
        assert_eq!(q.stats.share_bytes, 256);
        assert!(q.stats.chunks > 1);
        let solo = pinned.execute(&w.larger, &w.smaller, &spec, server.shared_params());
        assert_eq!(columns(&q.result), columns(&solo.result));
    }
}
