//! Integration tests of the Fig. 3 / Fig. 4 post-projection pipeline and of
//! the traced Radix-Decluster against the cache simulator (the Fig. 7a
//! effects).

use radix_decluster::cache::MemorySystem;
use radix_decluster::core::cluster::{
    is_clustered, radix_cluster_oids, radix_count, RadixClusterSpec,
};
use radix_decluster::core::decluster::traced::radix_decluster_traced;
use radix_decluster::core::decluster::{choose_window_bytes, radix_decluster, validate_inputs};
use radix_decluster::core::join::{join_cluster_spec, partitioned_hash_join};
use radix_decluster::core::positional::{clustered_positional_join, positional_join};
use radix_decluster::prelude::*;
use radix_decluster::workload::JoinWorkloadBuilder;

/// Runs the full §3.1 + §3.2 pipeline by hand (the way Figs. 3 and 4 draw it)
/// and checks every intermediate invariant.
#[test]
fn figure_3_and_4_pipeline_invariants() {
    let n = 50_000;
    let workload = JoinWorkloadBuilder::equal(n, 1).seed(13).build();
    let params = CacheParams::tiny_for_tests();

    // Join index via partitioned hash-join.
    let ji = partitioned_hash_join(
        workload.larger.key().as_slice(),
        workload.smaller.key().as_slice(),
        join_cluster_spec(n, params.cache_capacity()),
    );
    assert_eq!(ji.len(), workload.expected_matches);
    assert!(ji.is_valid_for(n, n));

    // Fig. 3: partial Radix-Cluster of the join index on the larger oids.
    let spec = RadixClusterSpec::optimal_partial(n, 4, params.cache_capacity());
    let clustered_larger = radix_cluster_oids(ji.larger(), ji.smaller(), spec);
    assert!(is_clustered(
        clustered_larger.keys(),
        spec.bits,
        spec.ignore
    ));
    assert_eq!(
        radix_count(clustered_larger.keys(), spec.bits, spec.ignore),
        clustered_larger.bounds()
    );
    // The per-cluster slice of the projection column fits the cache.
    assert!(n * 4 / clustered_larger.num_clusters() <= params.cache_capacity());

    // Positional joins into the larger projection column, clustered access.
    let larger_col = positional_join(clustered_larger.keys(), workload.larger.attr(0));
    let larger_col_clustered = clustered_positional_join(
        clustered_larger.keys(),
        clustered_larger.bounds(),
        workload.larger.attr(0),
    );
    assert_eq!(larger_col, larger_col_clustered);

    // Fig. 4: re-cluster the smaller oids with fresh result positions.
    let smaller_in_result_order = clustered_larger.payloads();
    let result_positions: Vec<Oid> = (0..smaller_in_result_order.len() as Oid).collect();
    let spec2 = RadixClusterSpec::optimal_partial(n, 4, params.cache_capacity());
    let clust_smaller = radix_cluster_oids(smaller_in_result_order, &result_positions, spec2);

    // The two §3.2 properties Radix-Decluster relies on.
    assert!(validate_inputs(
        clust_smaller.payloads(),
        clust_smaller.bounds()
    ));

    // CLUST_VALUES via clustered positional join, then Radix-Decluster.
    let clust_values = positional_join(clust_smaller.keys(), workload.smaller.attr(0));
    let window = choose_window_bytes(4, clust_smaller.num_clusters(), &params);
    let declustered = radix_decluster(
        clust_values.as_slice(),
        clust_smaller.payloads(),
        clust_smaller.bounds(),
        window,
    );

    // Must equal the straightforward unsorted projection.
    let direct = positional_join(smaller_in_result_order, workload.smaller.attr(0));
    assert_eq!(declustered, direct.as_slice());
}

/// The Fig. 7a window-size sweep, measured in simulated cache misses: the
/// miss counts must show the documented knees (rising L2 misses beyond the
/// cache capacity, extra TLB misses for tiny windows with many clusters).
#[test]
fn traced_decluster_reproduces_fig7a_knees() {
    let params = CacheParams::tiny_for_tests(); // 8 KB L2, 8-entry TLB, 1 KB pages
    let n = 32_768; // 128 KB of i32 output, 16× the simulated cache
    let bits = 6; // 64 clusters ≫ 8 TLB entries

    let mut smaller: Vec<Oid> = (0..n as Oid).collect();
    // Deterministic shuffle.
    for i in (1..n).rev() {
        let j = ((i as u64).wrapping_mul(6364136223846793005) % (i as u64 + 1)) as usize;
        smaller.swap(i, j);
    }
    let result_positions: Vec<Oid> = (0..n as Oid).collect();
    let clustered = radix_cluster_oids(
        &smaller,
        &result_positions,
        RadixClusterSpec::single_pass(bits),
    );
    let values: Vec<i32> = clustered.keys().iter().map(|&o| o as i32).collect();

    let run = |window: usize| {
        let mut mem = MemorySystem::new(&params);
        let (out, counts) = radix_decluster_traced(
            &values,
            clustered.payloads(),
            clustered.bounds(),
            window,
            &mut mem,
        );
        (out, counts)
    };

    let (out_tiny, tiny) = run(256);
    let (out_good, good) = run(4 * 1024);
    let (out_huge, huge) = run(256 * 1024);

    // All window sizes produce the identical result.
    assert_eq!(out_tiny, out_good);
    assert_eq!(out_good, out_huge);

    // Knee 1: window larger than the cache explodes L2 misses.
    assert!(
        huge.l2_misses > 2 * good.l2_misses,
        "L2 misses should jump once ‖W‖ > C: {} vs {}",
        huge.l2_misses,
        good.l2_misses
    );
    // Knee 2: tiny windows pay per-cluster start-up misses over and over.
    assert!(
        tiny.tlb_misses > good.tlb_misses,
        "tiny windows should cost more TLB misses: {} vs {}",
        tiny.tlb_misses,
        good.tlb_misses
    );
    assert!(tiny.l1_misses >= good.l1_misses);
}

/// Sparse positional joins (Fig. 11): lower selectivity means more cache lines
/// touched per useful value, which the simulator must show.
#[test]
fn sparse_positional_join_costs_grow_with_lower_selectivity() {
    use radix_decluster::cache::AddressSpace;
    use radix_decluster::workload::SparseWorkload;

    let params = CacheParams::tiny_for_tests();
    let selected = 20_000;

    let misses_for = |selectivity: f64| {
        let w = SparseWorkload::generate(selected, selectivity, 1, 17);
        // Clustered oids into the selection, then rebased to the base table.
        let sel_positions: Vec<Oid> = (0..selected as Oid).collect();
        let base_oids = w.selection.rebase(&sel_positions);
        // Replay the gather's access pattern over the base column.
        let mut mem = MemorySystem::new(&params);
        let mut space = AddressSpace::new();
        let col = space.alloc(w.base.cardinality(), 4);
        for &oid in &base_oids {
            mem.read(col.addr(oid as usize), 4);
        }
        mem.counts().l2_misses
    };

    let full = misses_for(1.0);
    let ten_percent = misses_for(0.1);
    let one_percent = misses_for(0.01);
    assert!(ten_percent > full, "10% selection must miss more than 100%");
    assert!(
        one_percent >= ten_percent,
        "1% selection must miss at least as much as 10%"
    );
}
