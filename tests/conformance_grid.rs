//! Workspace-wide conformance grid: every executor — sequential, parallel,
//! and streaming — checked against a brute-force oracle built purely from
//! `rdx_workload::attr_value`, over a sweep of `(N, ω, h, π, cache params,
//! memory budget)` cells, plus a kernel-level `(N, B, window)` sweep of
//! Radix-Decluster itself against a scatter oracle.
//!
//! The oracle never reads the generated relations' attribute columns: since
//! the builders define attribute `a` of row `r` as `attr_value(r, a)`, the
//! expected projected join is computable from the key columns alone.  Any
//! divergence — in the generators or in any strategy — fails the grid.
//!
//! Result-order conventions differ legitimately between strategies, so
//! cross-strategy agreement is checked as a sorted multiset of rows; the
//! streaming pipeline, which shares the DSM post-projection's order exactly,
//! is additionally checked **byte-identically** (same columns, same order)
//! against `DsmPostProjection::execute` for every budget, including budgets
//! below 1/16 of the data size, with the per-chunk working-set bound
//! asserted.

use radix_decluster::core::budget::MemoryBudget;
use radix_decluster::core::cluster::{radix_cluster_oids, RadixClusterSpec};
use radix_decluster::core::decluster::chunks::ChunkCursors;
use radix_decluster::core::decluster::radix_decluster;
use radix_decluster::core::strategy::reference::result_rows;
use radix_decluster::core::strategy::sink::MaterializeSink;
use radix_decluster::core::strategy::{
    dsm_post_projection_sparse, dsm_pre_projection, nsm_post_projection_decluster,
    nsm_post_projection_jive, nsm_pre_projection_hash, nsm_pre_projection_phash,
};
use radix_decluster::exec::{
    par_dsm_post_projection, par_nsm_post_projection_decluster, ProjectionPipeline,
};
use radix_decluster::prelude::*;
use radix_decluster::workload::{attr_value, HitRate, JoinWorkloadBuilder, SparseWorkload};
use std::collections::HashMap;

/// Brute-force oracle: the projected equi-join computed from the key columns
/// and `attr_value` alone, as a sorted multiset of rows.
fn oracle_rows(larger_keys: &[u64], smaller_keys: &[u64], spec: &QuerySpec) -> Vec<Vec<i32>> {
    let mut by_key: HashMap<u64, Vec<usize>> = HashMap::new();
    for (s, &k) in smaller_keys.iter().enumerate() {
        by_key.entry(k).or_default().push(s);
    }
    let mut rows = Vec::new();
    for (l, &k) in larger_keys.iter().enumerate() {
        if let Some(matches) = by_key.get(&k) {
            for &s in matches {
                let mut row = Vec::with_capacity(spec.total());
                for a in 0..spec.project_larger {
                    row.push(attr_value(l, a));
                }
                for b in 0..spec.project_smaller {
                    row.push(attr_value(s, b));
                }
                rows.push(row);
            }
        }
    }
    rows.sort_unstable();
    rows
}

/// Raw column-by-column contents, for byte-identity comparisons.
fn raw_columns(result: &ResultRelation) -> Vec<Vec<i32>> {
    result
        .columns()
        .iter()
        .map(|c| c.as_slice().to_vec())
        .collect()
}

/// The grid's workload cells: every combination of these axes.
const CARDINALITIES: [usize; 4] = [1, 13, 100, 640];
const HIT_RATES: [f64; 3] = [1.0 / 3.0, 1.0, 3.0];
/// `(ω, π_larger, π_smaller)` triples.
const SHAPES: [(usize, usize, usize); 3] = [(1, 1, 1), (2, 2, 1), (2, 2, 2)];

fn grid_params() -> [CacheParams; 2] {
    [CacheParams::tiny_for_tests(), CacheParams::paper_pentium4()]
}

#[test]
fn all_strategies_agree_with_the_attr_value_oracle() {
    let mut cells = 0usize;
    for n in CARDINALITIES {
        for h in HIT_RATES {
            for (omega, pi_l, pi_s) in SHAPES {
                let w = JoinWorkloadBuilder::equal(n, omega)
                    .hit_rate(HitRate(h))
                    .seed((n as u64) * 31 + (h * 10.0) as u64)
                    .build();
                let spec = QuerySpec {
                    project_larger: pi_l,
                    project_smaller: pi_s,
                };
                let expected =
                    oracle_rows(w.larger.key().as_slice(), w.smaller.key().as_slice(), &spec);
                assert_eq!(expected.len(), w.expected_matches, "N={n} h={h}");
                for params in grid_params() {
                    let cell = format!("N={n} h={h} ω={omega} π=({pi_l},{pi_s})");
                    // DSM post-projection: every u/s/c × u/d code combination.
                    for first in [
                        ProjectionCode::Unsorted,
                        ProjectionCode::Sorted,
                        ProjectionCode::PartialCluster,
                    ] {
                        for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
                            let plan = DsmPostProjection::with_codes(first, second);
                            let out = plan.execute(&w.larger, &w.smaller, &spec, &params);
                            assert_eq!(
                                result_rows(&out.result),
                                expected,
                                "{cell} dsm_post {}",
                                plan.label()
                            );
                        }
                    }
                    // DSM pre-projection.
                    let out = dsm_pre_projection(&w.larger, &w.smaller, &spec, &params);
                    assert_eq!(result_rows(&out.result), expected, "{cell} dsm_pre");
                    // NSM post-projection (Radix-Decluster and Jive-Join).
                    let out = nsm_post_projection_decluster(
                        &w.larger_nsm,
                        &w.smaller_nsm,
                        &spec,
                        &params,
                    );
                    assert_eq!(
                        result_rows(&out.result),
                        expected,
                        "{cell} nsm_post_decluster"
                    );
                    let out =
                        nsm_post_projection_jive(&w.larger_nsm, &w.smaller_nsm, &spec, &params);
                    assert_eq!(result_rows(&out.result), expected, "{cell} nsm_post_jive");
                    // NSM pre-projection (naive and partitioned hash join).
                    let out = nsm_pre_projection_hash(&w.larger_nsm, &w.smaller_nsm, &spec);
                    assert_eq!(result_rows(&out.result), expected, "{cell} nsm_pre_hash");
                    let out =
                        nsm_pre_projection_phash(&w.larger_nsm, &w.smaller_nsm, &spec, &params);
                    assert_eq!(result_rows(&out.result), expected, "{cell} nsm_pre_phash");
                    // Parallel executors, including the threads = 0
                    // (auto-detect) policy.
                    let plan = DsmPostProjection::plan(&w.larger, &w.smaller, &params);
                    for threads in [0usize, 3] {
                        let policy = ExecPolicy::with_threads(threads);
                        let out = par_dsm_post_projection(
                            &plan, &w.larger, &w.smaller, &spec, &params, &policy,
                        );
                        assert_eq!(
                            result_rows(&out.result),
                            expected,
                            "{cell} par_dsm threads={threads}"
                        );
                    }
                    let out = par_nsm_post_projection_decluster(
                        &w.larger_nsm,
                        &w.smaller_nsm,
                        &spec,
                        &params,
                        &ExecPolicy::with_threads(2),
                    );
                    assert_eq!(result_rows(&out.result), expected, "{cell} par_nsm");
                    // Streaming pipeline, tightest budget (byte-identity is
                    // covered exhaustively by the dedicated test below).
                    let data_bytes = 2 * n * omega * 4;
                    let policy = ExecPolicy::with_threads(2)
                        .budget(MemoryBudget::fraction_of(data_bytes, 64));
                    let pipeline = ProjectionPipeline::new(DsmPostProjection::with_codes(
                        ProjectionCode::PartialCluster,
                        SecondSideCode::Decluster,
                    ));
                    let mut sink = MaterializeSink::new();
                    pipeline.execute(&w.larger, &w.smaller, &spec, &params, &policy, &mut sink);
                    assert_eq!(
                        result_rows(&sink.into_result()),
                        expected,
                        "{cell} streaming"
                    );
                    cells += 1;
                }
            }
        }
    }
    // The grid really swept every cell (axes silently shrinking would pass
    // vacuously otherwise).
    assert_eq!(
        cells,
        CARDINALITIES.len() * HIT_RATES.len() * SHAPES.len() * grid_params().len()
    );
}

/// The acceptance gate: `ProjectionPipeline` output is byte-identical to
/// `DsmPostProjection::execute` — same columns, same row order — for every
/// code combination and budgets down to 1/64 of the data size, with the
/// per-chunk working-set bound asserted.
#[test]
fn streaming_pipeline_is_byte_identical_to_dsm_post_across_the_grid() {
    for n in [13usize, 257, 1_000] {
        for (omega, pi_l, pi_s) in SHAPES {
            let w = JoinWorkloadBuilder::equal(n, omega)
                .hit_rate(HitRate(1.0))
                .seed(n as u64)
                .build();
            let spec = QuerySpec {
                project_larger: pi_l,
                project_smaller: pi_s,
            };
            let params = CacheParams::tiny_for_tests();
            let data_bytes = 2 * n * omega * 4;
            for first in [
                ProjectionCode::Unsorted,
                ProjectionCode::Sorted,
                ProjectionCode::PartialCluster,
            ] {
                for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
                    let plan = DsmPostProjection::with_codes(first, second);
                    let expected =
                        raw_columns(&plan.execute(&w.larger, &w.smaller, &spec, &params).result);
                    for denom in [1usize, 16, 64] {
                        for threads in [1usize, 2] {
                            let policy = ExecPolicy::with_threads(threads)
                                .budget(MemoryBudget::fraction_of(data_bytes, denom));
                            let mut sink = MaterializeSink::new();
                            let stats = ProjectionPipeline::new(plan)
                                .execute(&w.larger, &w.smaller, &spec, &params, &policy, &mut sink);
                            assert_eq!(
                                raw_columns(&sink.into_result()),
                                expected,
                                "N={n} ω={omega} codes {} denom {denom} threads {threads}",
                                plan.label()
                            );
                            // Per-chunk working-set bound: the measured peak
                            // never exceeds what the plan admits, and stays
                            // within the budget whenever the budget can hold
                            // at least one row.
                            assert!(
                                stats.peak_chunk_bytes <= stats.streaming.max_working_set_bytes(),
                                "N={n} denom {denom}: peak {} > bound {}",
                                stats.peak_chunk_bytes,
                                stats.streaming.max_working_set_bytes()
                            );
                            let budget = data_bytes / denom;
                            if denom > 1 && budget >= stats.streaming.bytes_per_row {
                                assert!(
                                    stats.peak_chunk_bytes <= budget,
                                    "N={n} denom {denom}: peak {} > budget {budget}",
                                    stats.peak_chunk_bytes
                                );
                                assert!(
                                    stats.chunks_emitted > 1,
                                    "N={n} denom {denom} never chunked"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Kernel-level `(N, B, window)` conformance: Radix-Decluster — monolithic
/// and chunk-streamed — against the brute-force scatter oracle, including
/// windows smaller than one value and larger than the input.
#[test]
fn decluster_kernel_grid_matches_scatter_oracle() {
    for n in [1usize, 7, 64, 1_000] {
        for bits in [0u32, 2, 5, 8] {
            // A deterministic pseudo-shuffled smaller-oid assignment.
            let smaller: Vec<Oid> = (0..n as Oid)
                .map(|r| (r.wrapping_mul(2_654_435_761)) % n as Oid)
                .collect();
            let positions: Vec<Oid> = (0..n as Oid).collect();
            let clustered =
                radix_cluster_oids(&smaller, &positions, RadixClusterSpec::single_pass(bits));
            let values: Vec<i32> = clustered
                .keys()
                .iter()
                .map(|&o| o as i32 * 13 + 1)
                .collect();
            // Scatter oracle: out[positions[i]] = values[i].
            let mut expected = vec![0i32; n];
            for (i, &p) in clustered.payloads().iter().enumerate() {
                expected[p as usize] = values[i];
            }
            for window_bytes in [1usize, 4, 64, 1 << 20] {
                let got = radix_decluster(
                    &values,
                    clustered.payloads(),
                    clustered.bounds(),
                    window_bytes,
                );
                assert_eq!(got, expected, "n={n} B={bits} window={window_bytes}");
                // Chunk-streamed: same kernel over ChunkCursors chunks.
                for chunk_rows in [1usize, 3, 50, n] {
                    let mut cursors = ChunkCursors::new(clustered.payloads(), clustered.bounds());
                    let mut streamed = Vec::with_capacity(n);
                    while !cursors.is_done() {
                        let chunk = cursors.next_chunk(cursors.consumed() + chunk_rows);
                        let local_values = chunk.gather(&values);
                        let local_positions = chunk.rebased_positions(clustered.payloads());
                        streamed.extend(radix_decluster(
                            &local_values,
                            &local_positions,
                            &chunk.local_bounds(),
                            window_bytes,
                        ));
                    }
                    assert_eq!(
                        streamed, expected,
                        "n={n} B={bits} window={window_bytes} chunk={chunk_rows}"
                    );
                }
            }
        }
    }
}

/// Sparse projections ride the same oracle: the smaller side is a selection
/// over a base table whose attributes are `attr_value(base_row, a)`.
#[test]
fn sparse_strategy_agrees_with_the_attr_value_oracle() {
    for selectivity in [1.0f64, 0.1, 0.01] {
        for n in [40usize, 400] {
            let sparse = SparseWorkload::generate(n, selectivity, 2, n as u64);
            let larger = radix_decluster::workload::RelationBuilder::new(n * 2)
                .columns(2)
                .seed(n as u64 + 1)
                .key_domain(n as u64)
                .build_dsm();
            let spec = QuerySpec::symmetric(2);
            let params = CacheParams::tiny_for_tests();
            let out = dsm_post_projection_sparse(
                &larger,
                &sparse.base,
                &sparse.selection,
                &spec,
                &params,
            );
            // Oracle over (larger row, selected base row) with smaller-side
            // values keyed by the *base* row id.
            let selected_keys: Vec<u64> = sparse
                .selection
                .oids()
                .iter()
                .map(|&o| sparse.base.key_at(o))
                .collect();
            let mut by_key: HashMap<u64, Vec<usize>> = HashMap::new();
            for (i, &k) in selected_keys.iter().enumerate() {
                by_key
                    .entry(k)
                    .or_default()
                    .push(sparse.selection.oids()[i] as usize);
            }
            let mut expected = Vec::new();
            for (l, &k) in larger.key().as_slice().iter().enumerate() {
                if let Some(matches) = by_key.get(&k) {
                    for &base_row in matches {
                        let mut row = Vec::with_capacity(spec.total());
                        for a in 0..spec.project_larger {
                            row.push(attr_value(l, a));
                        }
                        for b in 0..spec.project_smaller {
                            row.push(attr_value(base_row, b));
                        }
                        expected.push(row);
                    }
                }
            }
            expected.sort_unstable();
            assert_eq!(
                result_rows(&out.result),
                expected,
                "selectivity {selectivity} N={n}"
            );
        }
    }
}
