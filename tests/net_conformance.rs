//! Wire-protocol conformance: a query served over a socket must be
//! **byte-identical** to the same query run in-process — across the
//! workspace `(N, h, ω, π, params)` grid, every `u/s/c × u/d` code
//! combination, and both transports (loopback TCP and unix-domain).
//! Around that core equivalence, the suite pins the serving semantics of
//! the front-end: malformed, truncated, and oversized frames are refused
//! with typed errors that tear down **one connection, never the server**;
//! per-tenant quotas shed the over-quota tenant with a typed
//! `TenantQuota` rejection while other tenants' results stay
//! byte-identical to their solo runs; a non-draining client hits
//! per-connection backpressure without blocking the engine; and a
//! scripted [`FaultPlan`] produces the **same per-query trace** whether
//! the queries arrive over the wire or in-process.

use radix_decluster::api::Session;
use radix_decluster::net::{encode_frame, NO_TICKET};
use radix_decluster::prelude::*;
use radix_decluster::workload::HitRate;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Raw column-by-column contents, for byte-identity comparisons.
fn raw_columns(result: &ResultRelation) -> Vec<Vec<i32>> {
    result
        .columns()
        .iter()
        .map(|c| c.as_slice().to_vec())
        .collect()
}

const CARDINALITIES: [usize; 4] = [1, 13, 100, 640];
const HIT_RATES: [f64; 3] = [1.0 / 3.0, 1.0, 3.0];
/// `(ω, π_larger, π_smaller)` triples.
const SHAPES: [(usize, usize, usize); 2] = [(1, 1, 1), (2, 2, 1)];

fn grid_params() -> [CacheParams; 2] {
    [CacheParams::tiny_for_tests(), CacheParams::paper_pentium4()]
}

fn all_codes() -> Vec<DsmPostProjection> {
    let mut codes = Vec::new();
    for first in [
        ProjectionCode::Unsorted,
        ProjectionCode::Sorted,
        ProjectionCode::PartialCluster,
    ] {
        for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
            codes.push(DsmPostProjection::with_codes(first, second));
        }
    }
    codes
}

/// A fresh unix-socket path per server (the bind requires it not exist).
fn unix_path() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rdx-net-conformance-{}-{n}.sock",
        std::process::id()
    ))
}

/// Spawns a server thread over `cfg` with `relations` registered (ids
/// `0..len` in order) and an optional fault script, serving `listener`
/// until every client disconnects.  `after` runs on the drained engine;
/// its value is the join result.
fn run_server<T, F>(
    listener: NetListener,
    cfg: ServeConfig,
    relations: Vec<DsmRelation>,
    net: NetConfig,
    fault: Option<FaultPlan>,
    after: F,
) -> thread::JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce(&mut QueryEngine, NetStats) -> T + Send + 'static,
{
    thread::spawn(move || {
        let mut engine = QueryEngine::new(cfg);
        for r in relations {
            engine.register(r);
        }
        if let Some(plan) = fault {
            engine.inject_faults(plan);
        }
        let mut server = NetServer::new(listener, engine, net);
        let stats = server.serve();
        after(server.engine_mut(), stats)
    })
}

/// The wire form of "project `(π_l, π_s)` from pair `(0, 1)` with pinned
/// codes" — the shape every grid cell submits.
fn wire_spec(pi_l: usize, pi_s: usize, codes: Option<DsmPostProjection>) -> SubmitSpec {
    SubmitSpec {
        larger: 0,
        smaller: 1,
        project_larger: pi_l as u32,
        project_smaller: pi_s as u32,
        budget_bytes: None,
        threads: None,
        codes,
        deadline_ns: None,
        priority: 1,
    }
}

enum Transport {
    Tcp,
    Unix,
}

/// The tentpole invariant, one transport at a time: every grid cell's
/// wire report carries exactly the bytes the in-process front door
/// produces for the same submission sequence.
fn grid_is_byte_identical_over(transport: Transport) {
    for n in CARDINALITIES {
        for h in HIT_RATES {
            for (omega, pi_l, pi_s) in SHAPES {
                let w = JoinWorkloadBuilder::equal(n, omega)
                    .hit_rate(HitRate(h))
                    .seed((n as u64) * 37 + (h * 10.0) as u64)
                    .build();
                let spec = QuerySpec {
                    project_larger: pi_l,
                    project_smaller: pi_s,
                };
                for params in grid_params() {
                    let cell = format!("N={n} h={h} ω={omega} π=({pi_l},{pi_s})");
                    // In-process oracle: the same plan sequence through
                    // the one planner entry.
                    let mut session = Session::with_params(params.clone());
                    let larger = session.register(w.larger.clone());
                    let smaller = session.register(w.smaller.clone());
                    let expected: Vec<Vec<Vec<i32>>> = all_codes()
                        .into_iter()
                        .map(|plan| {
                            let report = session
                                .query(larger, smaller)
                                .project(spec)
                                .codes(plan)
                                .run()
                                .expect("oracle run");
                            raw_columns(&report.result)
                        })
                        .collect();

                    // The same engine config behind a socket.
                    let cfg = ServeConfig {
                        params: params.clone(),
                        plan_shares: Some(1),
                        ..ServeConfig::default()
                    };
                    let (listener, addr, path) = match transport {
                        Transport::Tcp => {
                            let l = NetListener::bind_tcp("127.0.0.1:0").expect("bind tcp");
                            let addr = l.tcp_addr().expect("tcp addr");
                            (l, Some(addr), None)
                        }
                        Transport::Unix => {
                            let path = unix_path();
                            let l = NetListener::bind_unix(&path).expect("bind unix");
                            (l, None, Some(path))
                        }
                    };
                    let handle = run_server(
                        listener,
                        cfg,
                        vec![w.larger.clone(), w.smaller.clone()],
                        NetConfig::default(),
                        None,
                        |_, stats| stats,
                    );
                    let mut client = match (&addr, &path) {
                        (Some(addr), _) => NetClient::connect_tcp(*addr).expect("connect"),
                        (_, Some(path)) => NetClient::connect_unix(path).expect("connect"),
                        _ => unreachable!(),
                    };
                    let (version, tenant) = client.hello(None).expect("hello");
                    assert_eq!(version, WIRE_VERSION);
                    assert_eq!(tenant, None);
                    for (i, plan) in all_codes().into_iter().enumerate() {
                        let ticket = client
                            .submit(wire_spec(pi_l, pi_s, Some(plan)))
                            .expect("submit");
                        let report = client
                            .wait(ticket)
                            .expect("wait")
                            .unwrap_or_else(|e| panic!("{cell} {}: {e}", plan.label()));
                        assert_eq!(
                            report.columns,
                            expected[i],
                            "{cell} {} wire ≠ in-process",
                            plan.label()
                        );
                        assert_eq!(report.rows as usize, expected[i][0].len(), "{cell} rows");
                    }
                    drop(client);
                    let stats = handle.join().expect("server thread");
                    assert_eq!(stats.decode_errors, 0, "{cell} clean protocol run");
                    assert_eq!(stats.accepted, 1);
                    if let Some(path) = path {
                        let _ = std::fs::remove_file(path);
                    }
                }
            }
        }
    }
}

#[test]
fn tcp_loopback_is_byte_identical_to_in_process_across_the_grid() {
    grid_is_byte_identical_over(Transport::Tcp);
}

#[test]
#[cfg(unix)]
fn unix_socket_is_byte_identical_to_in_process_across_the_grid() {
    grid_is_byte_identical_over(Transport::Unix);
}

/// Reads until the peer closes, then decodes every complete frame.
fn drain_frames(stream: &mut TcpStream) -> Vec<Frame> {
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read to EOF");
    let mut frames = Vec::new();
    let mut at = 0;
    while let Ok(Some((frame, used))) =
        radix_decluster::net::decode_frame(&bytes[at..], radix_decluster::net::DEFAULT_MAX_PAYLOAD)
    {
        frames.push(frame);
        at += used;
    }
    frames
}

#[test]
fn malformed_frames_tear_down_the_connection_but_never_the_server() {
    let w = JoinWorkloadBuilder::equal(100, 1).seed(9).build();
    let expected = {
        let mut session = Session::with_params(CacheParams::tiny_for_tests());
        let larger = session.register(w.larger.clone());
        let smaller = session.register(w.smaller.clone());
        let report = session.query(larger, smaller).run().expect("oracle");
        raw_columns(&report.result)
    };
    let cfg = ServeConfig {
        params: CacheParams::tiny_for_tests(),
        plan_shares: Some(1),
        ..ServeConfig::default()
    };
    let listener = NetListener::bind_tcp("127.0.0.1:0").expect("bind");
    let addr = listener.tcp_addr().expect("addr");
    let net = NetConfig {
        // Small cap so the oversized probe is cheap to declare.
        max_payload: 1024,
        ..NetConfig::default()
    };
    let handle = run_server(
        listener,
        cfg,
        vec![w.larger.clone(), w.smaller.clone()],
        net,
        None,
        |_, stats| stats,
    );
    // serve() runs until every client is gone; this idle connection spans
    // the whole scenario so the sequential probes can't race its exit.
    let keepalive = TcpStream::connect(addr).expect("keepalive");

    // Four hostile connections, each violating the protocol differently.
    // Each must get exactly one typed ProtocolError notice and then EOF.
    let probes: [(&str, Vec<u8>, &str); 4] = [
        (
            "garbage bytes",
            b"XYZW garbage!".to_vec(),
            "bad frame magic",
        ),
        (
            "future version",
            vec![0x52, 0x44, 99, 0x03, 8, 0, 0, 0],
            "unsupported wire version",
        ),
        (
            "oversized declaration",
            vec![0x52, 0x44, 1, 0x03, 255, 255, 255, 255],
            "exceeds the 1024 B cap",
        ),
        (
            "truncated payload",
            // A Poll frame whose header claims 4 payload bytes — too few
            // for its u64 ticket field.
            vec![0x52, 0x44, 1, 0x03, 4, 0, 0, 0, 1, 2, 3, 4],
            "malformed frame payload",
        ),
    ];
    for (what, bytes, expect_detail) in probes {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&bytes).expect("send probe");
        let frames = drain_frames(&mut stream);
        assert_eq!(frames.len(), 1, "{what}: one teardown notice then EOF");
        match &frames[0] {
            Frame::ProtocolError { detail } => assert!(
                detail.contains(expect_detail),
                "{what}: notice {detail:?} should mention {expect_detail:?}"
            ),
            other => panic!("{what}: expected ProtocolError, got {other:?}"),
        }
    }

    // A client echoing a server frame is torn down the same way.
    let mut echo = TcpStream::connect(addr).expect("connect");
    let mut bytes = Vec::new();
    encode_frame(&Frame::Submitted { ticket: 7 }, &mut bytes);
    echo.write_all(&bytes).expect("send echo");
    let frames = drain_frames(&mut echo);
    assert!(
        matches!(&frames[..], [Frame::ProtocolError { detail }] if detail.contains("server-to-client")),
        "echoed server frame must be refused, got {frames:?}"
    );

    // The server survived all five: a clean client still gets exact bytes.
    let mut client = NetClient::connect_tcp(addr).expect("connect clean");
    client.hello(None).expect("hello");
    let ticket = client.submit(wire_spec(1, 1, None)).expect("submit");
    let report = client.wait(ticket).expect("wait").expect("done");
    assert_eq!(report.columns, expected);
    drop(client);
    drop(keepalive);

    let stats = handle.join().expect("server thread");
    assert_eq!(stats.decode_errors, 5);
    assert_eq!(stats.accepted, 7, "5 hostile + 1 clean + the keepalive");
    assert_eq!(stats.closed, 7);
}

#[test]
fn over_quota_tenant_is_shed_while_the_other_tenant_stays_byte_identical() {
    let w = JoinWorkloadBuilder::equal(640, 2).seed(17).build();
    let spec = QuerySpec::symmetric(2);

    // Solo oracle for the unconstrained tenant: the same query alone in a
    // fresh session with the same knobs (quotas change admission only, so
    // the quota table's presence must not perturb its bytes).
    let quotas = TenantQuotas::default()
        // 8 bytes cannot hold one result row, so every "capped" submission
        // is over-quota at admission, deterministically.
        .with_tenant("capped", TenantQuota::unlimited().resident_bytes(8));
    let cfg = ServeConfig {
        params: CacheParams::tiny_for_tests(),
        plan_shares: Some(1),
        tenant_quotas: quotas,
        ..ServeConfig::default()
    };
    let expected = {
        let mut session = Session::new(cfg.clone());
        let larger = session.register(w.larger.clone());
        let smaller = session.register(w.smaller.clone());
        let report = session
            .query(larger, smaller)
            .project(spec)
            .run()
            .expect("solo oracle");
        raw_columns(&report.result)
    };

    let listener = NetListener::bind_tcp("127.0.0.1:0").expect("bind");
    let addr = listener.tcp_addr().expect("addr");
    let handle = run_server(
        listener,
        cfg,
        vec![w.larger.clone(), w.smaller.clone()],
        NetConfig::default(),
        None,
        |engine, stats| {
            let capped = engine.tenant_id("capped");
            let free = engine.tenant_id("free");
            (
                stats,
                engine.stats(),
                engine.tenant_stats(capped).expect("capped stats"),
                engine.tenant_stats(free).expect("free stats"),
            )
        },
    );
    // Holds the server up across the two sequential tenant connections.
    let keepalive = TcpStream::connect(addr).expect("keepalive");

    // The over-quota tenant: typed rejection naming the tenant and both
    // sides of the byte ledger.
    let mut capped = NetClient::connect_tcp(addr).expect("connect capped");
    let (_, capped_id) = capped.hello(Some("capped")).expect("hello");
    let capped_id = capped_id.expect("interned tenant id");
    let ticket = capped.submit(wire_spec(2, 2, None)).expect("submit");
    match capped.wait(ticket).expect("wait") {
        Err(RdxError::TenantQuota { tenant, kind }) => {
            assert_eq!(tenant, capped_id, "rejection names the Hello tenant");
            match kind {
                TenantQuotaKind::ResidentBytes { needed, limit, .. } => {
                    assert_eq!(limit, 8);
                    assert!(needed > limit);
                }
                other => panic!("expected a byte-cap rejection, got {other:?}"),
            }
        }
        other => panic!("capped tenant must be shed, got {other:?}"),
    }
    drop(capped);

    // The free tenant, on the same server, right after the shed: bytes
    // identical to its solo run.
    let mut free = NetClient::connect_tcp(addr).expect("connect free");
    free.hello(Some("free")).expect("hello");
    let ticket = free.submit(wire_spec(2, 2, None)).expect("submit");
    let report = free.wait(ticket).expect("wait").expect("done");
    assert_eq!(report.columns, expected, "free tenant ≠ its solo run");
    drop(free);
    drop(keepalive);

    let (net_stats, engine_stats, capped_stats, free_stats) = handle.join().expect("server thread");
    assert_eq!(net_stats.decode_errors, 0);
    assert_eq!(engine_stats.tenant_quota_rejects, 1);
    assert_eq!((capped_stats.admissions, capped_stats.rejections), (0, 1));
    assert_eq!((free_stats.admissions, free_stats.rejections), (1, 0));
    assert_eq!(free_stats.in_flight, 0, "accounting released at teardown");
}

#[test]
fn a_non_draining_client_hits_backpressure_without_blocking_the_engine() {
    let w = JoinWorkloadBuilder::equal(200, 1).seed(3).build();
    let cfg = ServeConfig {
        params: CacheParams::tiny_for_tests(),
        plan_shares: Some(1),
        ..ServeConfig::default()
    };
    let listener = NetListener::bind_tcp("127.0.0.1:0").expect("bind");
    let addr = listener.tcp_addr().expect("addr");
    let net = NetConfig {
        // One queued reply pauses the connection's request decoding.
        outbound_limit: 1,
        ..NetConfig::default()
    };
    let handle = run_server(
        listener,
        cfg,
        vec![w.larger.clone(), w.smaller.clone()],
        net,
        None,
        |_, stats| stats,
    );

    // Burst 16 polls in one write without reading a single reply: the
    // server must pause this connection's decoding at the outbound bound
    // (never dropping or reordering), then drain all 16 typed replies.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut burst = Vec::new();
    for _ in 0..16 {
        encode_frame(&Frame::Poll { ticket: 99 }, &mut burst);
    }
    stream.write_all(&burst).expect("send burst");
    std::thread::sleep(std::time::Duration::from_millis(30));

    // Meanwhile, a second well-behaved client's query completes — the
    // engine was never blocked by the stalled connection.
    let mut client = NetClient::connect_tcp(addr).expect("connect clean");
    client.hello(None).expect("hello");
    let ticket = client.submit(wire_spec(1, 1, None)).expect("submit");
    client.wait(ticket).expect("wait").expect("done");
    drop(client);

    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("shutdown");
    let frames = drain_frames(&mut stream);
    assert_eq!(frames.len(), 16, "all burst replies delivered in order");
    for frame in &frames {
        assert!(
            matches!(
                frame,
                Frame::Rejected {
                    ticket: 99,
                    error: RdxError::UnknownTicket { ticket: 99 }
                }
            ),
            "unmapped poll must answer UnknownTicket, got {frame:?}"
        );
    }
    drop(stream);

    let stats = handle.join().expect("server thread");
    assert!(
        stats.backpressure_pauses >= 1,
        "the burst must trip at least one pause, stats: {stats:?}"
    );
    assert_eq!(stats.decode_errors, 0);
}

#[test]
fn zero_budget_is_refused_before_a_ticket_exists() {
    let w = JoinWorkloadBuilder::equal(50, 1).seed(5).build();
    let cfg = ServeConfig {
        params: CacheParams::tiny_for_tests(),
        plan_shares: Some(1),
        ..ServeConfig::default()
    };
    let listener = NetListener::bind_tcp("127.0.0.1:0").expect("bind");
    let addr = listener.tcp_addr().expect("addr");
    let handle = run_server(
        listener,
        cfg,
        vec![w.larger.clone(), w.smaller.clone()],
        NetConfig::default(),
        None,
        |_, stats| stats,
    );
    let mut client = NetClient::connect_tcp(addr).expect("connect");
    client.hello(None).expect("hello");
    let mut spec = wire_spec(1, 1, None);
    spec.budget_bytes = Some(0);
    match client.submit(spec) {
        Err(ClientError::Rejected(RdxError::Budget(BudgetError::ZeroBytes))) => {}
        other => panic!("expected a pre-ticket zero-budget refusal, got {other:?}"),
    }
    // The refusal's sentinel means "never ticketed"; the connection stays
    // usable and a corrected submission completes.
    let ticket = client.submit(wire_spec(1, 1, None)).expect("submit");
    assert_ne!(ticket, NO_TICKET);
    client.wait(ticket).expect("wait").expect("done");
    drop(client);
    handle.join().expect("server thread");
}

/// The timing-independent shape of one trace event: everything the
/// scripted engine decides deterministically, with wall-clock fields
/// dropped.
fn event_shape(kind: &EventKind) -> String {
    match kind {
        EventKind::Submit => "submit".into(),
        EventKind::Tenant { tenant } => format!("tenant:{tenant}"),
        EventKind::Admit { share_bytes, .. } => format!("admit:{share_bytes}"),
        EventKind::Reject { reason } => format!("reject:{reason}"),
        EventKind::CacheLookup { hit } => format!("cache:{hit}"),
        EventKind::ChunkStep { chunk, rows, .. } => format!("chunk:{chunk}:{rows}"),
        EventKind::ChunkProfile {
            chunk, accesses, ..
        } => format!("profile:{chunk}:{accesses}"),
        EventKind::Replan {
            old_chunks,
            new_chunks,
            reason,
        } => format!("replan:{old_chunks}->{new_chunks}:{reason}"),
        EventKind::DeadlineMiss { deadline_ns, .. } => format!("deadline_miss:{deadline_ns}"),
        EventKind::Cancel { reason } => format!("cancel:{reason}"),
        EventKind::Done { rows, .. } => format!("done:{rows}"),
    }
}

/// Per-query shape sequences, in first-submission order.
fn trace_shapes(trace: &TraceSnapshot) -> Vec<Vec<String>> {
    trace
        .queries()
        .into_iter()
        .map(|q| {
            trace
                .events_for(q)
                .iter()
                .map(|e| event_shape(&e.kind))
                .collect()
        })
        .collect()
}

#[test]
fn a_scripted_fault_plan_produces_the_same_trace_over_the_wire() {
    let w = JoinWorkloadBuilder::equal(1_500, 1).seed(41).build();
    let spec = QuerySpec::symmetric(1);
    let cfg = ServeConfig {
        params: CacheParams::tiny_for_tests(),
        global_budget: MemoryBudget::bytes(4 * 1024),
        max_concurrent: 2,
        threads_per_query: 1,
        plan_shares: Some(2),
        observability: true,
        ..ServeConfig::default()
    };
    // Submission ordinal 0 panics on worker 1 at its third chunk step;
    // ordinal 1 is untouched.
    let fault = FaultPlan::new().panic_at(0, 2, 1);

    // In-process run of the script.
    let (expected_trace, expected_columns) = {
        let mut session = Session::new(cfg.clone());
        let larger = session.register(w.larger.clone());
        let smaller = session.register(w.smaller.clone());
        session.inject_faults(fault.clone());
        let victim = session.query(larger, smaller).project(spec).submit();
        let survivor = session.query(larger, smaller).project(spec).submit();
        while session.drive(64) > 0 {}
        assert!(matches!(
            victim.poll(&mut session),
            QueryPoll::Rejected(RdxError::WorkerPanicked { worker: 1 })
        ));
        let columns = match survivor.poll(&mut session) {
            QueryPoll::Done(q) => raw_columns(&q.result),
            other => panic!("survivor must finish, got {other:?}"),
        };
        (session.trace_snapshot().expect("trace"), columns)
    };

    // The identical script over the wire.
    let listener = NetListener::bind_tcp("127.0.0.1:0").expect("bind");
    let addr = listener.tcp_addr().expect("addr");
    let handle = run_server(
        listener,
        cfg,
        vec![w.larger.clone(), w.smaller.clone()],
        NetConfig::default(),
        Some(fault),
        |engine, stats| (engine.obs().trace_snapshot().expect("trace"), stats),
    );
    let mut client = NetClient::connect_tcp(addr).expect("connect");
    client.hello(None).expect("hello");
    let victim = client.submit(wire_spec(1, 1, None)).expect("submit victim");
    let survivor = client
        .submit(wire_spec(1, 1, None))
        .expect("submit survivor");
    match client.wait(victim).expect("wait victim") {
        Err(RdxError::WorkerPanicked { worker }) => assert_eq!(worker, 1),
        other => panic!("victim must report its panic, got {other:?}"),
    }
    let report = client.wait(survivor).expect("wait survivor").expect("done");
    assert_eq!(
        report.columns, expected_columns,
        "survivor over the wire ≠ survivor in-process"
    );
    drop(client);
    let (wire_trace, stats) = handle.join().expect("server thread");
    assert_eq!(stats.decode_errors, 0);

    // The scripted degradation is a pure function of the plan: per-query
    // event shapes are identical whichever transport delivered the
    // queries.
    assert_eq!(
        trace_shapes(&wire_trace),
        trace_shapes(&expected_trace),
        "wire trace diverged from the in-process trace"
    );
}
