//! Serving-layer conformance: concurrency must be *invisible* in the bytes.
//!
//! The grid runs K-query mixes through the `rdx-serve` scheduler and checks,
//! for every query, that the interleaved execution produces output
//! byte-identical to serial execution — across thread counts (including the
//! auto-detect `threads = 0`), both fairness policies, and both the
//! cache-miss (cold) and cache-hit (warm) paths of the clustered-index
//! cache.  It also asserts the admission guarantee: the sum of concurrent
//! working-set bounds never exceeds the global `MemoryBudget`.

use radix_decluster::prelude::*;
use radix_decluster::serve::BatchReport;

/// A small multi-tenant mix: one scan-ish tenant, three lookup-ish ones,
/// zipfian popularity, mixed π and budget hints.
fn mix() -> QueryMix {
    QueryMix::generate(&MixConfig {
        tenants: vec![(4_000, 2), (2_000, 1), (1_000, 2), (500, 1)],
        queries: 12,
        zipf_exponent: 1.0,
        seed: 23,
        ..MixConfig::default()
    })
}

/// Registers every tenant pair and builds the request list for `mix`.
fn submit(server: &mut RdxServer, mix: &QueryMix) -> Vec<ServerRequest> {
    let ids: Vec<(RelationId, RelationId)> = mix
        .tenants
        .iter()
        .map(|w| {
            (
                server.register(w.larger.clone()),
                server.register(w.smaller.clone()),
            )
        })
        .collect();
    mix.queries
        .iter()
        .map(|q| {
            let (larger, smaller) = ids[q.tenant];
            let mut request = ServerRequest::new(larger, smaller, QuerySpec::symmetric(q.project));
            if let Some(d) = q.budget_denominator {
                request = request.with_budget_hint(MemoryBudget::fraction_of(
                    mix.tenant_data_bytes(q.tenant),
                    d,
                ));
            }
            request
        })
        .collect()
}

fn result_columns(report: &BatchReport) -> Vec<Vec<Vec<i32>>> {
    report
        .outcomes
        .iter()
        .map(|o| {
            let q = o.outcome.as_ref().expect("query served");
            q.result
                .columns()
                .iter()
                .map(|c| c.as_slice().to_vec())
                .collect()
        })
        .collect()
}

fn config(
    budget: MemoryBudget,
    max_concurrent: usize,
    threads: usize,
    cache: usize,
) -> ServeConfig {
    ServeConfig {
        params: CacheParams::tiny_for_tests(),
        global_budget: budget,
        max_concurrent,
        threads_per_query: threads,
        cache_bytes: cache,
        fairness: FairnessPolicy::CostWeighted,
        // Pin the planning share so serial and concurrent servers choose
        // identical plans/cluster specs — the grid then compares pure
        // scheduling, never plan drift.
        plan_shares: Some(4),
        observability: false,
        profiled: false,
        ..ServeConfig::default()
    }
}

#[test]
fn concurrent_equals_serial_across_threads_and_fairness() {
    let mix = mix();
    let budget = MemoryBudget::bytes(64 * 1024);
    for threads in [0usize, 1, 2] {
        // The serial oracle at this thread count: one query at a time,
        // cache disabled.  (Plans adapt to the worker count, so the oracle
        // must run on the same one; `plan_shares` is pinned by `config`.)
        let mut serial_server = RdxServer::new(config(budget, 1, threads, 0));
        let serial_requests = submit(&mut serial_server, &mix);
        let serial = serial_server.run_batch(&serial_requests);
        let expected = result_columns(&serial);
        assert_eq!(serial.stats.peak_concurrency, 1);
        assert_eq!(serial.stats.cache.hits, 0);

        for fairness in [FairnessPolicy::RoundRobin, FairnessPolicy::CostWeighted] {
            let mut cfg = config(budget, 4, threads, 1 << 20);
            cfg.fairness = fairness;
            let mut server = RdxServer::new(cfg);
            let requests = submit(&mut server, &mix);
            let report = server.run_batch(&requests);
            assert_eq!(
                result_columns(&report),
                expected,
                "threads {threads} fairness {fairness:?}"
            );
            // Genuinely concurrent, and interleaved at chunk granularity.
            assert!(report.stats.peak_concurrency > 1, "threads {threads}");
            assert!(report.stats.chunks_dispatched as usize > mix.queries.len());
            // The zipfian mix repeats joins: the cache must see hits.
            assert!(report.stats.cache.hits > 0, "threads {threads}");
        }
    }
}

#[test]
fn warm_cache_path_is_byte_identical_to_cold() {
    let mix = mix();
    let mut server = RdxServer::new(config(MemoryBudget::bytes(48 * 1024), 3, 1, 1 << 20));
    let requests = submit(&mut server, &mix);
    let cold = server.run_batch(&requests);
    let warm = server.run_batch(&requests);
    assert_eq!(result_columns(&cold), result_columns(&warm));
    // Second pass: every prepared prefix is already resident.
    assert_eq!(warm.stats.cache.misses, cold.stats.cache.misses);
    let warm_hits: usize = warm
        .outcomes
        .iter()
        .filter(|o| o.outcome.as_ref().unwrap().stats.cache_hit)
        .count();
    assert_eq!(warm_hits, mix.queries.len());
}

#[test]
fn admission_never_over_commits_the_global_budget() {
    let mix = mix();
    for budget_bytes in [16 * 1024usize, 64 * 1024, 256 * 1024] {
        let budget = MemoryBudget::bytes(budget_bytes);
        let mut server = RdxServer::new(config(budget, 4, 2, 1 << 20));
        let requests = submit(&mut server, &mix);
        let report = server.run_batch(&requests);
        assert!(
            report.stats.peak_concurrent_bytes <= budget_bytes,
            "budget {budget_bytes}: peak {}",
            report.stats.peak_concurrent_bytes
        );
        for outcome in &report.outcomes {
            let q = outcome.outcome.as_ref().expect("query served");
            // Every query's measured peak stays inside its admitted share.
            assert!(
                q.stats.peak_chunk_bytes <= q.stats.share_bytes,
                "budget {budget_bytes}: peak {} share {}",
                q.stats.peak_chunk_bytes,
                q.stats.share_bytes
            );
        }
    }
}

#[test]
fn degenerate_budgets_surface_typed_errors_not_panics() {
    let w = JoinWorkloadBuilder::equal(300, 1).seed(77).build();
    // Plan-time: checked planning rejects a below-one-row budget…
    let spec = QuerySpec::symmetric(1);
    let params = CacheParams::tiny_for_tests();
    let err =
        plan_streaming_checked(300, 300, 4, &spec, &params, MemoryBudget::bytes(2), 1).unwrap_err();
    assert!(matches!(err, BudgetError::BelowOneRow { .. }));
    // …while the unchecked planner documents a clamp to one-row chunks.
    let clamped = plan_streaming(300, 300, 4, &spec, &params, MemoryBudget::bytes(2), 1);
    assert_eq!(clamped.chunk_rows, 1);
    // Serving layer: the same condition is a typed rejection per request.
    let mut server = RdxServer::new(config(MemoryBudget::bytes(3), 2, 1, 0));
    let larger = server.register(w.larger.clone());
    let smaller = server.register(w.smaller.clone());
    let report = server.run_batch(&[ServerRequest::new(larger, smaller, spec)]);
    assert!(matches!(
        report.outcomes[0].outcome.as_ref().unwrap_err(),
        ServeError::Budget(BudgetError::BelowOneRow { .. })
    ));
    // And zero-byte budget construction is a typed error, not a panic.
    assert!(matches!(
        MemoryBudget::try_bytes(0),
        Err(BudgetError::ZeroBytes)
    ));
}
