//! The `rdx-exec` agreement suite: every parallel kernel and executor must be
//! **byte-identical** to its sequential reference, for every thread count.
//!
//! Parallelism here is pure work division — per-thread histograms merge with
//! a prefix sum, decluster windows tile the result disjointly, partitions
//! join independently — so there is no tolerance to grant: any divergence,
//! down to a single byte, is a scheduling bug (lost morsel, overlapping
//! shard, unstable merge order).

use radix_decluster::core::cluster::{radix_cluster_oids, RadixClusterSpec};
use radix_decluster::core::decluster::{choose_window_bytes, radix_decluster};
use radix_decluster::core::strategy::nsm_post_projection_decluster;
use radix_decluster::core::strategy::reference::{reference_rows, result_rows};
use radix_decluster::exec::{
    par_dsm_post_projection, par_nsm_post_projection_decluster, par_radix_cluster_oids,
    par_radix_decluster,
};
use radix_decluster::prelude::*;
use radix_decluster::workload::HitRate;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A deterministic skewed oid multiset: ~60% of the draws collapse onto a
/// handful of hot oids, the rest spread over the whole domain.
fn skewed_oids(n: usize, domain: usize, seed: u64) -> Vec<Oid> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..n)
        .map(|_| {
            let r = next();
            if r % 5 < 3 {
                (r % 7) as Oid
            } else {
                (r % domain as u64) as Oid
            }
        })
        .collect()
}

#[test]
fn parallel_cluster_agrees_on_skewed_keys() {
    let oids = skewed_oids(30_000, 30_000, 11);
    let payloads: Vec<u32> = (0..oids.len() as u32).collect();
    for spec in [
        RadixClusterSpec::single_pass(0),
        RadixClusterSpec::single_pass(6),
        RadixClusterSpec::partial(8, 2, 3),
        RadixClusterSpec::partial(11, 3, 0),
    ] {
        let expected = radix_cluster_oids(&oids, &payloads, spec);
        for threads in THREAD_COUNTS {
            let got =
                par_radix_cluster_oids(&oids, &payloads, spec, &ExecPolicy::with_threads(threads));
            assert_eq!(
                got, expected,
                "cluster diverged: bits={} passes={} ignore={} threads={threads}",
                spec.bits, spec.passes, spec.ignore
            );
        }
    }
}

#[test]
fn parallel_decluster_agrees_for_every_window_and_thread_count() {
    let n = 50_000;
    let mut smaller: Vec<Oid> = (0..n as Oid).collect();
    // Deterministic permutation via multiplicative stepping.
    smaller.rotate_left(n / 3);
    smaller.reverse();
    let positions: Vec<Oid> = (0..n as Oid).collect();
    let clustered = radix_cluster_oids(&smaller, &positions, RadixClusterSpec::single_pass(7));
    let values: Vec<i32> = clustered.keys().iter().map(|&o| o as i32 * 3 + 1).collect();

    let params = CacheParams::tiny_for_tests();
    let windows = [
        64usize,
        choose_window_bytes(4, 128, &params),
        1 << 22, // one giant window: degenerates to a scatter
    ];
    for window in windows {
        let expected = radix_decluster(&values, clustered.payloads(), clustered.bounds(), window);
        for threads in THREAD_COUNTS {
            let got = par_radix_decluster(
                &values,
                clustered.payloads(),
                clustered.bounds(),
                window,
                &ExecPolicy::with_threads(threads),
            );
            assert_eq!(
                got, expected,
                "decluster diverged: window={window} threads={threads}"
            );
        }
    }
}

#[test]
fn parallel_dsm_strategy_agrees_across_workloads() {
    let params = CacheParams::tiny_for_tests();
    for (n, pi, hit_rate, seed) in [
        (4_000usize, 1usize, 1.0f64, 31u64),
        (3_000, 4, 1.0 / 3.0, 32),
        (2_000, 8, 3.0, 33),
    ] {
        let w = JoinWorkloadBuilder::equal(n, pi)
            .hit_rate(HitRate(hit_rate))
            .seed(seed)
            .build();
        let spec = QuerySpec::symmetric(pi);
        let expected = reference_rows(&w.larger, &w.smaller, &spec);
        for first in [
            ProjectionCode::Unsorted,
            ProjectionCode::Sorted,
            ProjectionCode::PartialCluster,
        ] {
            for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
                let plan = DsmPostProjection::with_codes(first, second);
                let seq = plan.execute(&w.larger, &w.smaller, &spec, &params);
                assert_eq!(
                    result_rows(&seq.result),
                    expected,
                    "sequential {} wrong",
                    plan.label()
                );
                for threads in THREAD_COUNTS {
                    let par = par_dsm_post_projection(
                        &plan,
                        &w.larger,
                        &w.smaller,
                        &spec,
                        &params,
                        &ExecPolicy::with_threads(threads),
                    );
                    // Byte-identical: same columns in the same row order,
                    // not merely the same multiset of rows.
                    for (c, (seq_col, par_col)) in seq
                        .result
                        .columns()
                        .iter()
                        .zip(par.result.columns())
                        .enumerate()
                    {
                        assert_eq!(
                            seq_col.as_slice(),
                            par_col.as_slice(),
                            "codes {} column {c} threads {threads} n={n} pi={pi} h={hit_rate}",
                            plan.label()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn parallel_nsm_strategy_agrees() {
    let params = CacheParams::tiny_for_tests();
    for (pi, hit_rate) in [(1usize, 1.0f64), (2, 1.0 / 3.0)] {
        let w = JoinWorkloadBuilder::equal(1_500, 3)
            .hit_rate(HitRate(hit_rate))
            .seed(77)
            .build();
        let spec = QuerySpec::symmetric(pi);
        let seq = nsm_post_projection_decluster(&w.larger_nsm, &w.smaller_nsm, &spec, &params);
        for threads in THREAD_COUNTS {
            let par = par_nsm_post_projection_decluster(
                &w.larger_nsm,
                &w.smaller_nsm,
                &spec,
                &params,
                &ExecPolicy::with_threads(threads),
            );
            for (c, (seq_col, par_col)) in seq
                .result
                .columns()
                .iter()
                .zip(par.result.columns())
                .enumerate()
            {
                assert_eq!(
                    seq_col.as_slice(),
                    par_col.as_slice(),
                    "NSM column {c} threads {threads} pi={pi} h={hit_rate}"
                );
            }
        }
    }
}

#[test]
fn planned_parallel_execution_is_correct_end_to_end() {
    // The threads-aware planner + parallel executor path a caller would use.
    use radix_decluster::core::strategy::planner::plan_by_cost_with_threads;
    let params = CacheParams::tiny_for_tests();
    let w = JoinWorkloadBuilder::equal(5_000, 2).seed(99).build();
    let spec = QuerySpec::symmetric(2);
    let expected = reference_rows(&w.larger, &w.smaller, &spec);
    for threads in THREAD_COUNTS {
        let plan = plan_by_cost_with_threads(&w.larger, &w.smaller, &spec, &params, threads);
        let out = par_dsm_post_projection(
            &plan,
            &w.larger,
            &w.smaller,
            &spec,
            &params,
            &ExecPolicy::with_threads(threads),
        );
        assert_eq!(result_rows(&out.result), expected, "threads {threads}");
        assert_eq!(out.result.cardinality(), w.expected_matches);
    }
}
