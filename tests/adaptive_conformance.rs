//! Adaptive-execution conformance: re-planning must be *invisible* in the
//! bytes.
//!
//! The tentpole guarantee of runtime adaptation is that it moves only chunk
//! boundaries, never values or positions: an adaptive run is byte-identical
//! to the non-adaptive run for every workload, policy, thread count and
//! budget — including pathological injected feedback that forces a re-split
//! every hysteresis window.  The deterministic half of the harness replaces
//! the production wall-clock [`FeedbackSource`] with [`ScriptedFeedback`]
//! ratio scripts, so every re-plan point is a pure function of the script
//! and the assertions never depend on machine speed.

use proptest::prelude::*;
use radix_decluster::prelude::*;
use radix_decluster::workload::JoinWorkload;
use std::sync::Arc;

fn columns(result: &ResultRelation) -> Vec<Vec<i32>> {
    result
        .columns()
        .iter()
        .map(|c| c.as_slice().to_vec())
        .collect()
}

fn decluster_codes() -> DsmPostProjection {
    DsmPostProjection::with_codes(ProjectionCode::PartialCluster, SecondSideCode::Decluster)
}

/// A prepared pipeline + the plain (non-adaptive) reference bytes for it.
struct Fixture {
    workload: JoinWorkload,
    prepared: Arc<PreparedProjection>,
    spec: QuerySpec,
    params: CacheParams,
    policy: ExecPolicy,
    expected: Vec<Vec<i32>>,
}

impl Fixture {
    fn new(rows: usize, width: usize, seed: u64, threads: usize, budget_bytes: usize) -> Self {
        let workload = JoinWorkloadBuilder::equal(rows, width).seed(seed).build();
        let spec = QuerySpec::symmetric(width);
        let params = CacheParams::tiny_for_tests();
        let policy = ExecPolicy::with_threads(threads).budget(MemoryBudget::bytes(budget_bytes));
        let pipeline = ProjectionPipeline::new(decluster_codes());
        let prepared =
            Arc::new(pipeline.prepare(&workload.larger, &workload.smaller, &params, &policy));
        let expected = {
            let mut run = DsmPipelineRun::over_dsm(
                prepared.clone(),
                &workload.larger,
                &workload.smaller,
                &spec,
                &params,
                &policy,
            );
            let mut sink = MaterializeSink::new();
            run.run_to_completion(&mut sink);
            assert_eq!(
                run.run_stats().adaptive_replans,
                0,
                "plain run never adapts"
            );
            columns(&sink.into_result())
        };
        Fixture {
            workload,
            prepared,
            spec,
            params,
            policy,
            expected,
        }
    }

    fn run(&self) -> DsmPipelineRun<'_> {
        DsmPipelineRun::over_dsm(
            self.prepared.clone(),
            &self.workload.larger,
            &self.workload.smaller,
            &self.spec,
            &self.params,
            &self.policy,
        )
    }

    /// Runs to completion with `policy`/`script` armed, asserting byte
    /// identity, and returns the run's stats.
    fn run_adaptive(
        &self,
        policy: AdaptivePolicy,
        script: ScriptedFeedback,
    ) -> radix_decluster::exec::PipelineStats {
        let mut run = self.run();
        run.attach_adaptive(policy, Box::new(script), &self.params);
        let mut sink = MaterializeSink::new();
        run.run_to_completion(&mut sink);
        assert_eq!(
            columns(&sink.into_result()),
            self.expected,
            "adaptive run changed bytes"
        );
        assert_eq!(run.rows_emitted(), self.workload.expected_matches);
        run.run_stats()
    }
}

/// The acceptance scenario: a 3×-slower-than-predicted feedback stream must
/// force a re-split of the remaining chunks — tighter chunks, visible in the
/// `pipeline.adaptive_replans` counter and a `Replan{reason: "slow"}` trace
/// event — while the output stays byte-identical.
#[test]
fn three_x_slow_feedback_resplits_and_stays_byte_identical() {
    let fx = Fixture::new(6_000, 2, 7, 1, 2 * 1024);
    let original_chunk_rows = {
        let run = fx.run();
        let s = *run.streaming();
        assert!(s.num_chunks >= 8, "fixture must chunk enough to adapt");
        s.chunk_rows
    };

    let obs = Obs::enabled(ObsConfig::default());
    let query = QueryId::next();
    let mut run = fx.run();
    let predicted = run.predicted_chunk_ns(&fx.params);
    run.attach_obs(&obs, query, predicted);
    run.attach_adaptive(
        AdaptivePolicy::default(),
        Box::new(ScriptedFeedback::constant(3_000)),
        &fx.params,
    );
    let mut sink = MaterializeSink::new();
    run.run_to_completion(&mut sink);
    assert_eq!(columns(&sink.into_result()), fx.expected);

    let stats = run.run_stats();
    assert!(stats.adaptive_replans >= 1, "3x-slow stream must re-split");
    assert!(
        stats.adaptive_replans <= AdaptivePolicy::default().replan_budget as usize,
        "re-plan budget exceeded"
    );
    // Slower than predicted: the live plan tightened, and the peak working
    // set still honours the original grant (the ceiling never grows).
    assert!(stats.streaming.chunk_rows < original_chunk_rows);
    assert!(stats.peak_chunk_bytes <= 2 * 1024);

    let metrics = obs.metrics_snapshot().expect("enabled");
    assert_eq!(
        metrics.counter("pipeline.adaptive_replans"),
        Some(stats.adaptive_replans as u64)
    );
    let delta = metrics
        .histogram("pipeline.resplit_chunk_delta")
        .expect("recorded");
    assert_eq!(delta.count, stats.adaptive_replans as u64);

    let trace = obs.trace_snapshot().expect("enabled");
    let life = trace.events_for(query);
    let replans: Vec<_> = life
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Replan {
                old_chunks,
                new_chunks,
                reason,
            } => Some((old_chunks, new_chunks, reason)),
            _ => None,
        })
        .collect();
    assert_eq!(replans.len(), stats.adaptive_replans);
    for &(old_chunks, new_chunks, reason) in &replans {
        assert_eq!(reason, "slow");
        assert!(
            new_chunks > old_chunks,
            "a slow re-split must tighten chunks ({old_chunks} -> {new_chunks})"
        );
    }
}

/// Accurate feedback: the EWMA never leaves the hysteresis band, so zero
/// re-plans fire and the plan is exactly the one-shot plan.
#[test]
fn accurate_feedback_never_resplits() {
    let fx = Fixture::new(4_000, 2, 11, 1, 2 * 1024);
    let planned = *fx.run().streaming();
    let stats = fx.run_adaptive(AdaptivePolicy::default(), ScriptedFeedback::constant(1_000));
    assert_eq!(stats.adaptive_replans, 0, "hysteresis must hold");
    assert_eq!(stats.streaming, planned, "plan must be untouched");
}

/// The pathological stream: alternating extreme ratios under a hair-trigger
/// policy force a re-split at (nearly) every observation window until the
/// re-plan budget runs dry — and the bytes still never change.
#[test]
fn pathological_feedback_resplits_every_window_and_stays_byte_identical() {
    let fx = Fixture::new(6_000, 2, 13, 2, 2 * 1024);
    assert!(
        fx.run().streaming().num_chunks >= 8,
        "fixture must stream more chunks than the re-plan budget"
    );
    let policy = AdaptivePolicy::hair_trigger().replans(8);
    let script: Vec<u64> = (0..64)
        .map(|i| if i % 2 == 0 { 5_000 } else { 100 })
        .collect();
    let stats = fx.run_adaptive(policy, ScriptedFeedback::from_ratios(&script));
    // Every observation is far outside [0.9x, 1.1x]: with one observation
    // per decision the controller fires each window until its budget is
    // spent (the fixture streams far more chunks than the budget).
    assert_eq!(stats.adaptive_replans, 8);
    assert!(stats.peak_chunk_bytes <= 2 * 1024, "grant ceiling violated");
}

/// Adaptive-on ≡ adaptive-off across the serving-layer `(N, ω, threads,
/// budget)` grid, with the production wall-clock feedback source and both
/// the default and the hair-trigger policy: whatever the controller decides
/// on live timings, results are byte-identical and the re-plan budget
/// bounds how often it may decide.
#[test]
fn adaptive_grid_is_byte_identical_through_the_server() {
    for &(rows, width) in &[(2_000usize, 2usize), (4_000, 1)] {
        for threads in [1usize, 2] {
            for budget_bytes in [16 * 1024usize, 64 * 1024] {
                let config = ServeConfig {
                    params: CacheParams::tiny_for_tests(),
                    global_budget: MemoryBudget::bytes(budget_bytes),
                    max_concurrent: 3,
                    threads_per_query: threads,
                    cache_bytes: 1 << 20,
                    fairness: FairnessPolicy::CostWeighted,
                    plan_shares: Some(3),
                    observability: false,
                    profiled: false,
                    ..ServeConfig::default()
                };
                let w = JoinWorkloadBuilder::equal(rows, width)
                    .seed(rows as u64)
                    .build();
                let spec = QuerySpec::symmetric(width);

                let mut server = RdxServer::new(config);
                let larger = server.register(w.larger.clone());
                let smaller = server.register(w.smaller.clone());
                let plain = ServerRequest::new(larger, smaller, spec);
                let requests = [
                    plain,
                    plain.with_adaptive(AdaptivePolicy::default()),
                    plain.with_adaptive(AdaptivePolicy::hair_trigger()),
                ];
                let report = server.run_batch(&requests);
                let reference =
                    columns(&report.outcomes[0].outcome.as_ref().expect("served").result);
                for (i, outcome) in report.outcomes.iter().enumerate().skip(1) {
                    let q = outcome.outcome.as_ref().expect("served");
                    assert_eq!(
                        columns(&q.result),
                        reference,
                        "rows {rows} width {width} threads {threads} budget {budget_bytes} req {i}"
                    );
                    let policy = requests[i].adaptive.expect("adaptive request");
                    assert!(q.stats.adaptive_replans <= policy.replan_budget as usize);
                }
                assert_eq!(
                    report.outcomes[0]
                        .outcome
                        .as_ref()
                        .unwrap()
                        .stats
                        .adaptive_replans,
                    0
                );
                assert_eq!(
                    report.stats.adaptive_replans,
                    report
                        .outcomes
                        .iter()
                        .map(|o| o.outcome.as_ref().unwrap().stats.adaptive_replans as u64)
                        .sum::<u64>()
                );
            }
        }
    }
}

/// The engine counts mid-flight re-plans apart from admission re-plans: a
/// scripted 3×-slow adaptive query bumps `adaptive_replans` while classic
/// `replans` stays untouched, and its per-query stats carry the count.
#[test]
fn engine_counts_adaptive_replans_distinct_from_admission_replans() {
    let w = JoinWorkloadBuilder::equal(6_000, 1).seed(29).build();
    let mut engine = QueryEngine::new(ServeConfig {
        params: CacheParams::tiny_for_tests(),
        global_budget: MemoryBudget::bytes(2 * 1024),
        max_concurrent: 1,
        threads_per_query: 1,
        cache_bytes: 1 << 20,
        fairness: FairnessPolicy::CostWeighted,
        plan_shares: Some(1),
        observability: false,
        profiled: false,
        ..ServeConfig::default()
    });
    let larger = engine.register(w.larger.clone());
    let smaller = engine.register(w.smaller.clone());
    let request = ServerRequest::new(larger, smaller, QuerySpec::symmetric(1));

    // Reference: non-adaptive direct run.
    let mut rq = engine.resolve_direct(&request).expect("resolves");
    let mut sink = MaterializeSink::new();
    rq.run_to_completion(&mut sink);
    engine.retire(rq);
    let reference = columns(&sink.into_result());

    // Adaptive run with the wall-clock source swapped for a deterministic
    // 3x-slow script.
    let mut rq = engine
        .resolve_direct(&request.with_adaptive(AdaptivePolicy::default()))
        .expect("resolves");
    rq.replace_feedback(Box::new(ScriptedFeedback::constant(3_000)));
    let mut sink = MaterializeSink::new();
    rq.run_to_completion(&mut sink);
    let stats = engine.retire(rq);
    assert_eq!(columns(&sink.into_result()), reference);
    assert!(
        stats.adaptive_replans >= 1,
        "scripted slow stream must fire"
    );

    let engine_stats = engine.stats();
    assert_eq!(engine_stats.adaptive_replans, stats.adaptive_replans as u64);
    assert_eq!(engine_stats.replans, 0, "no admission re-plan happened");

    // replace_feedback on a non-adaptive query is a harmless no-op.
    let mut rq = engine.resolve_direct(&request).expect("resolves");
    rq.replace_feedback(Box::new(ScriptedFeedback::constant(3_000)));
    let mut sink = MaterializeSink::new();
    rq.run_to_completion(&mut sink);
    let stats = engine.retire(rq);
    assert_eq!(stats.adaptive_replans, 0);
}

/// The `rdx-api` builder: `.adaptive(policy)` flows through the front door,
/// defaults to off, and never changes bytes.
#[test]
fn api_adaptive_builder_flows_through_the_front_door() {
    let w = JoinWorkloadBuilder::equal(3_000, 2).seed(17).build();
    let mut session = Session::new(ServeConfig {
        params: CacheParams::tiny_for_tests(),
        global_budget: MemoryBudget::bytes(8 * 1024),
        ..ServeConfig::default()
    });
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());
    let spec = QuerySpec::symmetric(2);

    let plain = session
        .query(larger, smaller)
        .project(spec)
        .run()
        .expect("served");
    assert_eq!(plain.stats.adaptive_replans, 0, "default is off");

    let adaptive = session
        .query(larger, smaller)
        .project(spec)
        .adaptive(AdaptivePolicy::hair_trigger())
        .run()
        .expect("served");
    assert_eq!(columns(&adaptive.result), columns(&plain.result));
    assert!(
        adaptive.stats.adaptive_replans <= AdaptivePolicy::hair_trigger().replan_budget as usize
    );
}

/// Satellite 3: a budget that shrinks *mid-flight* (an engine share change)
/// re-splits the remaining rows without violating the one-row floor, and a
/// budget below the floor is a typed [`RdxError::Budget`] — never a clamp —
/// leaving the run intact.
#[test]
fn rebudget_mid_flight_resplits_and_pins_the_typed_error_path() {
    let fx = Fixture::new(6_000, 2, 19, 1, 8 * 1024);
    let mut run = fx.run();
    let mut sink = MaterializeSink::new();
    let wide_chunk_rows = run.streaming().chunk_rows;
    for _ in 0..3 {
        run.step(&mut sink).expect("rows remain");
    }

    // Shrink the share: the remaining rows re-split under tighter chunks.
    run.rebudget(MemoryBudget::bytes(1_024), &fx.params)
        .expect("1 KB holds a row");
    assert!(run.streaming().chunk_rows < wide_chunk_rows);
    assert!(run.streaming().chunk_rows >= 1, "one-row floor");
    for _ in 0..3 {
        run.step(&mut sink).expect("rows remain");
    }

    // A share below one resident row is a typed error, not a clamp…
    let bytes_per_row = run.streaming().bytes_per_row;
    let err = run
        .rebudget(MemoryBudget::bytes(1), &fx.params)
        .expect_err("below the one-row floor");
    match err {
        RdxError::Budget(BudgetError::BelowOneRow {
            budget_bytes,
            bytes_per_row: reported,
        }) => {
            assert_eq!(budget_bytes, 1);
            assert_eq!(reported, bytes_per_row);
        }
        other => panic!("expected BelowOneRow, got {other:?}"),
    }
    // …and the refused rebudget left the run fully usable.
    run.run_to_completion(&mut sink);
    assert_eq!(columns(&sink.into_result()), fx.expected);
}

/// Growing the share mid-flight is also a re-split — towards *wider*
/// chunks — and equally invisible in the bytes.
#[test]
fn rebudget_can_widen_as_well_as_tighten() {
    let fx = Fixture::new(4_000, 1, 23, 1, 512);
    let mut run = fx.run();
    let mut sink = MaterializeSink::new();
    let tight_chunk_rows = run.streaming().chunk_rows;
    run.step(&mut sink).expect("rows remain");
    run.rebudget(MemoryBudget::bytes(64 * 1024), &fx.params)
        .expect("larger share");
    assert!(run.streaming().chunk_rows > tight_chunk_rows);
    run.run_to_completion(&mut sink);
    assert_eq!(columns(&sink.into_result()), fx.expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `AdaptivePolicy` decisions are a pure function of the injected
    /// timing sequence: replaying the same script yields the same decision
    /// at every step, and the re-plan budget is never exceeded — for
    /// arbitrary scripts and policy knobs.
    #[test]
    fn controller_decisions_are_a_pure_function_of_the_script(
        ratios in proptest::collection::vec(1u64..6_000, 1..64),
        alpha in 100u64..1_001,
        budget in 0u32..6,
        min_obs in 1u32..4,
    ) {
        let policy = AdaptivePolicy::default()
            .alpha(alpha)
            .replans(budget)
            .observations(min_obs);
        let replay = || {
            let mut ctl = AdaptiveController::new(policy);
            ratios
                .iter()
                .map(|&r| ctl.observe(r.saturating_mul(1_000), 1_000_000))
                .collect::<Vec<_>>()
        };
        let (a, b) = (replay(), replay());
        prop_assert_eq!(&a, &b, "same script must give same decisions");
        let fired = a
            .iter()
            .filter(|d| matches!(d, AdaptiveDecision::Replan { .. }))
            .count();
        prop_assert!(fired as u32 <= budget, "re-plan budget exceeded");
    }

    /// A scripted adaptive run under arbitrary feedback: emitted rows grow
    /// strictly monotonically chunk by chunk until every remaining row is
    /// covered, re-plans stay within budget, and the bytes match the
    /// non-adaptive reference.
    #[test]
    fn scripted_runs_cover_all_rows_monotonically(
        ratios in proptest::collection::vec(50u64..5_000, 1..16),
        budget in 1u32..5,
        seed in 1u64..20,
    ) {
        let fx = Fixture::new(2_000, 1, seed, 1, 1_024);
        let policy = AdaptivePolicy::hair_trigger().replans(budget);
        let mut run = fx.run();
        run.attach_adaptive(
            policy,
            Box::new(ScriptedFeedback::from_ratios(&ratios)),
            &fx.params,
        );
        let mut sink = MaterializeSink::new();
        let total = fx.workload.expected_matches;
        let mut covered = 0usize;
        while let Some(rows) = run.step(&mut sink) {
            prop_assert!(rows > 0, "every chunk must advance coverage");
            prop_assert!(run.streaming().chunk_rows >= 1, "one-row floor");
            covered += rows;
            prop_assert_eq!(covered, run.rows_emitted());
        }
        prop_assert_eq!(covered, total, "remaining rows must be fully covered");
        prop_assert!(run.run_stats().adaptive_replans <= budget as usize);
        prop_assert_eq!(columns(&sink.into_result()), fx.expected.clone());
    }
}

/// The peak working set honours the budget with adaptation enabled for
/// every direction the controller can move (slow shrinks, fast restores).
#[test]
fn adaptive_peak_working_set_never_exceeds_the_grant() {
    let budget_bytes = 2 * 1024;
    let fx = Fixture::new(6_000, 2, 31, 1, budget_bytes);
    for script in [
        ScriptedFeedback::constant(4_000),
        ScriptedFeedback::constant(200),
        ScriptedFeedback::from_ratios(&[4_000, 200, 4_000, 200]),
    ] {
        let stats = fx.run_adaptive(AdaptivePolicy::hair_trigger(), script);
        assert!(
            stats.peak_chunk_bytes <= budget_bytes,
            "peak {} exceeds grant {budget_bytes}",
            stats.peak_chunk_bytes
        );
        assert!(stats.streaming.max_working_set_bytes() <= budget_bytes);
    }
}
