//! Cross-crate integration tests: every projection strategy of the paper must
//! produce the same projected join result on the same workload, across hit
//! rates, projectivities and cardinalities.

use radix_decluster::core::strategy::reference::{reference_rows, result_rows};
use radix_decluster::core::strategy::{
    dsm_pre_projection, nsm_post_projection_decluster, nsm_post_projection_jive,
    nsm_pre_projection_hash, nsm_pre_projection_phash,
};
use radix_decluster::prelude::*;
use radix_decluster::workload::{HitRate, JoinWorkloadBuilder};

fn check_all_strategies(n: usize, omega: usize, pi: usize, hit_rate: f64, seed: u64) {
    let workload = JoinWorkloadBuilder::equal(n, omega)
        .hit_rate(HitRate(hit_rate))
        .seed(seed)
        .build();
    let spec = QuerySpec::symmetric(pi);
    // The tiny hierarchy forces the cache-conscious code paths (clustering,
    // decluster windows, multi-pass partitioning) even at test sizes.
    let params = CacheParams::tiny_for_tests();
    let expected = reference_rows(&workload.larger, &workload.smaller, &spec);

    let planned = DsmPostProjection::plan(&workload.larger, &workload.smaller, &params).execute(
        &workload.larger,
        &workload.smaller,
        &spec,
        &params,
    );
    assert_eq!(result_rows(&planned.result), expected, "DSM-post (planned)");

    for first in [
        ProjectionCode::Unsorted,
        ProjectionCode::Sorted,
        ProjectionCode::PartialCluster,
    ] {
        for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
            let out = DsmPostProjection::with_codes(first, second).execute(
                &workload.larger,
                &workload.smaller,
                &spec,
                &params,
            );
            assert_eq!(
                result_rows(&out.result),
                expected,
                "DSM-post {}/{}",
                first.letter(),
                second.letter()
            );
        }
    }

    let out = dsm_pre_projection(&workload.larger, &workload.smaller, &spec, &params);
    assert_eq!(result_rows(&out.result), expected, "DSM-pre-phash");

    let out = nsm_pre_projection_hash(&workload.larger_nsm, &workload.smaller_nsm, &spec);
    assert_eq!(result_rows(&out.result), expected, "NSM-pre-hash");

    let out = nsm_pre_projection_phash(&workload.larger_nsm, &workload.smaller_nsm, &spec, &params);
    assert_eq!(result_rows(&out.result), expected, "NSM-pre-phash");

    let out =
        nsm_post_projection_decluster(&workload.larger_nsm, &workload.smaller_nsm, &spec, &params);
    assert_eq!(result_rows(&out.result), expected, "NSM-post-decluster");

    let out = nsm_post_projection_jive(&workload.larger_nsm, &workload.smaller_nsm, &spec, &params);
    assert_eq!(result_rows(&out.result), expected, "NSM-post-jive");
}

#[test]
fn all_strategies_agree_hit_rate_one() {
    check_all_strategies(3_000, 4, 2, 1.0, 101);
}

#[test]
fn all_strategies_agree_hit_rate_three() {
    check_all_strategies(2_400, 2, 2, 3.0, 102);
}

#[test]
fn all_strategies_agree_hit_rate_one_third() {
    check_all_strategies(3_000, 2, 1, 1.0 / 3.0, 103);
}

#[test]
fn all_strategies_agree_high_projectivity() {
    check_all_strategies(1_200, 16, 16, 1.0, 104);
}

#[test]
fn all_strategies_agree_tiny_relation() {
    // Everything fits every cache level: the planner's u/u path.
    check_all_strategies(64, 2, 2, 1.0, 105);
}

#[test]
fn all_strategies_agree_larger_workload() {
    // Big enough that the paper-platform planner also chooses c/d.
    let workload = JoinWorkloadBuilder::equal(300_000, 1).seed(106).build();
    let spec = QuerySpec::symmetric(1);
    let params = CacheParams::paper_pentium4();
    let plan = DsmPostProjection::plan(&workload.larger, &workload.smaller, &params);
    assert_eq!(plan.label(), "c/d");
    let out = plan.execute(&workload.larger, &workload.smaller, &spec, &params);
    assert_eq!(out.result.cardinality(), workload.expected_matches);
    let pre = dsm_pre_projection(&workload.larger, &workload.smaller, &spec, &params);
    assert_eq!(result_rows(&out.result), result_rows(&pre.result));
}
