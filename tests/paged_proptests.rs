//! Property tests for the paged backends — `decluster::paged`,
//! `decluster::varsize` and `nsm::paged` — the modules with the thinnest
//! direct coverage.  The axis deliberately stressed here: *random page
//! sizes*, including pages far smaller than one insertion window (the §5
//! regime where the output granularity is the page, not the window), and
//! windows both smaller than one value and larger than the whole input.

use proptest::prelude::*;
use radix_decluster::core::cluster::{radix_cluster_oids, RadixClusterSpec};
use radix_decluster::core::decluster::paged::radix_decluster_paged;
use radix_decluster::core::decluster::varsize::radix_decluster_varsize;
use radix_decluster::dsm::{Oid, VarColumn};
use radix_decluster::nsm::buffer::{PAGE_HEADER_BYTES, SLOT_ENTRY_BYTES};
use radix_decluster::nsm::{assign_positions, BufferManager};

/// Deterministic variable-size strings plus the Fig. 4-style clustered input
/// over them.
fn varsize_inputs(
    n: usize,
    bits: u32,
    seed: u64,
) -> (VarColumn, Vec<Oid>, Vec<usize>, Vec<String>) {
    let strings: Vec<String> = (0..n)
        .map(|i| {
            let rep = ((i as u64).wrapping_mul(seed | 1) % 23) as usize;
            format!("v{i}:{}", "x".repeat(rep))
        })
        .collect();
    let smaller: Vec<Oid> = (0..n as Oid)
        .map(|r| (r.wrapping_mul(2_654_435_761).wrapping_add(seed as Oid)) % n as Oid)
        .collect();
    let positions: Vec<Oid> = (0..n as Oid).collect();
    let clustered = radix_cluster_oids(&smaller, &positions, RadixClusterSpec::single_pass(bits));
    let mut values = VarColumn::new();
    for &o in clustered.keys() {
        values.push_str(&strings[o as usize]);
    }
    let expected: Vec<String> = smaller
        .iter()
        .map(|&o| strings[o as usize].clone())
        .collect();
    (
        values,
        clustered.payloads().to_vec(),
        clustered.bounds().to_vec(),
        expected,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fig. 12 paged decluster round-trips byte-identically for any page
    /// size — including pages smaller than the insertion window — and any
    /// window, with placements laid out in non-decreasing page order.
    #[test]
    fn paged_decluster_round_trips_for_any_page_and_window(
        n in 1usize..500,
        bits in 0u32..7,
        page_size in 64usize..4_096,
        window_bytes in 1usize..65_536,
        seed in 0u64..1_000,
    ) {
        let (values, positions, bounds, expected) = varsize_inputs(n, bits, seed);
        let mut bm = BufferManager::new(page_size);
        let placed = radix_decluster_paged(&values, &positions, &bounds, window_bytes, &mut bm);
        prop_assert_eq!(placed.placements.len(), n);
        for (r, want) in expected.iter().enumerate() {
            prop_assert_eq!(placed.read(&bm, r, want.len()), want.as_bytes());
        }
        // Result order implies non-decreasing page ids.
        for w in placed.placements.windows(2) {
            prop_assert!(w[0].page <= w[1].page);
        }
    }

    /// The in-memory varsize decluster agrees with the paged one and with
    /// the direct per-row expectation, for any window.
    #[test]
    fn varsize_decluster_round_trips_for_any_window(
        n in 1usize..500,
        bits in 0u32..7,
        window_bytes in 1usize..65_536,
        seed in 0u64..1_000,
    ) {
        let (values, positions, bounds, expected) = varsize_inputs(n, bits, seed);
        let out = radix_decluster_varsize(&values, &positions, &bounds, window_bytes);
        prop_assert_eq!(out.len(), n);
        for (r, want) in expected.iter().enumerate() {
            prop_assert_eq!(out.get_str(r), want.as_str());
        }
    }

    /// `assign_positions` (Fig. 12 phase 2) never straddles a page, never
    /// overlaps values, charges every slot-directory entry, and moves to a
    /// fresh page only when forced.
    #[test]
    fn assign_positions_is_a_dense_non_straddling_layout(
        lengths in proptest::collection::vec(0usize..40, 0..300),
        page_size in 64usize..1_024,
    ) {
        let placements = assign_positions(&lengths, page_size);
        prop_assert_eq!(placements.len(), lengths.len());
        let budget = page_size - PAGE_HEADER_BYTES;
        let mut prev_page = 0usize;
        let mut expected_offset = 0usize;
        let mut expected_slot = 0usize;
        for (i, (p, &len)) in placements.iter().zip(&lengths).enumerate() {
            prop_assert!(p.page >= prev_page, "page went backwards at value {}", i);
            if p.page > prev_page {
                prop_assert_eq!(p.page, prev_page + 1, "skipped a page at value {}", i);
                // A fresh page is only started when the value cannot fit.
                prop_assert!(
                    expected_offset + (expected_slot + 1) * SLOT_ENTRY_BYTES + len > budget,
                    "value {} spilled although it fit", i
                );
                expected_offset = 0;
                expected_slot = 0;
                prev_page = p.page;
            }
            prop_assert_eq!(p.offset, expected_offset);
            prop_assert_eq!(p.slot, expected_slot);
            // Value plus its share of the slot directory stays inside the page.
            prop_assert!(p.offset + len + (p.slot + 1) * SLOT_ENTRY_BYTES <= budget);
            expected_offset += len;
            expected_slot += 1;
        }
    }

    /// Writing the layout through a `BufferManager` round-trips every value
    /// (pages allocated exactly as `pages_needed` says).
    #[test]
    fn assigned_layout_round_trips_through_the_buffer_manager(
        lengths in proptest::collection::vec(1usize..40, 1..200),
        page_size in 64usize..1_024,
    ) {
        let placements = assign_positions(&lengths, page_size);
        let mut bm = BufferManager::new(page_size);
        let first = radix_decluster::nsm::paged::allocate_for(&mut bm, &placements);
        for (i, (p, &len)) in placements.iter().zip(&lengths).enumerate() {
            let byte = (i % 251) as u8;
            bm.page_mut(first + p.page).write_at(p.slot, p.offset, &vec![byte; len]);
        }
        for (i, (p, &len)) in placements.iter().zip(&lengths).enumerate() {
            let byte = (i % 251) as u8;
            prop_assert_eq!(bm.page(first + p.page).read(p.slot, len), &vec![byte; len][..]);
        }
        prop_assert_eq!(bm.num_pages(), radix_decluster::nsm::paged::pages_needed(&placements));
    }
}
