//! Property-based tests of the core invariants, spanning the workspace crates.

use proptest::prelude::*;
use radix_decluster::core::cluster::{
    is_clustered, radix_cluster, radix_cluster_oids, radix_count, radix_sort_oids, RadixClusterSpec,
};
use radix_decluster::core::decluster::paged::radix_decluster_paged;
use radix_decluster::core::decluster::radix_decluster;
use radix_decluster::core::join::{hash_join, partitioned_hash_join};
use radix_decluster::dsm::VarColumn;
use radix_decluster::nsm::BufferManager;
use radix_decluster::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Radix-clustering is a permutation: nothing added, nothing lost, pairs
    /// stay together, and the output really is clustered on the radix field.
    #[test]
    fn radix_cluster_is_a_stable_permutation(
        oids in proptest::collection::vec(0u32..50_000, 0..2_000),
        bits in 0u32..10,
        passes in 1u32..4,
        ignore in 0u32..6,
    ) {
        let payloads: Vec<u32> = (0..oids.len() as u32).collect();
        let spec = RadixClusterSpec::partial(bits, passes, ignore);
        let clustered = radix_cluster_oids(&oids, &payloads, spec);

        prop_assert_eq!(clustered.len(), oids.len());
        prop_assert_eq!(*clustered.bounds().last().unwrap(), oids.len());
        prop_assert!(is_clustered(clustered.keys(), bits, ignore));
        // Pairs preserved: payload p still rides with oids[p].
        for (&k, &p) in clustered.keys().iter().zip(clustered.payloads()) {
            prop_assert_eq!(oids[p as usize], k);
        }
        // radix_count over the clustered keys reproduces the bounds.
        prop_assert_eq!(radix_count(clustered.keys(), bits, ignore), clustered.bounds().to_vec());
    }

    /// Parallel Radix-Cluster (rdx-exec) is byte-identical to the sequential
    /// kernel — same stable permutation, same borders — for arbitrary
    /// bit/pass/ignore splits and thread counts.
    #[test]
    fn parallel_radix_cluster_is_the_same_stable_permutation(
        oids in proptest::collection::vec(0u32..50_000, 0..2_000),
        bits in 0u32..10,
        passes in 1u32..4,
        ignore in 0u32..6,
        threads in 1usize..9,
    ) {
        use radix_decluster::exec::par_radix_cluster_oids;
        let payloads: Vec<u32> = (0..oids.len() as u32).collect();
        let spec = RadixClusterSpec::partial(bits, passes, ignore);
        let sequential = radix_cluster_oids(&oids, &payloads, spec);
        let parallel = par_radix_cluster_oids(&oids, &payloads, spec, &ExecPolicy::with_threads(threads));

        // Byte-identical to the sequential reference…
        prop_assert_eq!(&parallel, &sequential);
        // …and independently a stable permutation clustered on the field.
        prop_assert_eq!(parallel.len(), oids.len());
        prop_assert!(is_clustered(parallel.keys(), bits, ignore));
        for (&k, &p) in parallel.keys().iter().zip(parallel.payloads()) {
            prop_assert_eq!(oids[p as usize], k);
        }
        prop_assert_eq!(radix_count(parallel.keys(), bits, ignore), parallel.bounds().to_vec());
    }

    /// The software write-combining (buffered) scatter is byte-identical to
    /// the plain scatter for arbitrary `(bits, passes, ignore)` and skew —
    /// including the all-one-cluster extreme (`modulus == 1`) and cluster
    /// sizes that are not multiples of the staging slot, which exercise the
    /// partial-flush path.  Scratch reuse across cases is part of the
    /// property.
    #[test]
    fn buffered_scatter_equals_plain_scatter(
        raw in proptest::collection::vec(0u32..u32::MAX, 0..2_500),
        modulus in 1u32..60_000,
        bits in 0u32..11,
        passes in 1u32..4,
        ignore in 0u32..6,
    ) {
        use radix_decluster::core::cluster::{
            radix_cluster_oids_with_scratch, radix_cluster_with_scratch, ClusterScratch,
            ScatterMode,
        };
        let oids: Vec<Oid> = raw.iter().map(|&v| v % modulus).collect();
        let payloads: Vec<u32> = (0..oids.len() as u32).collect();
        let spec = RadixClusterSpec::partial(bits, passes, ignore);
        let plain = radix_cluster_oids(&oids, &payloads, spec);
        let mut scratch = ClusterScratch::new();
        let buffered = radix_cluster_oids_with_scratch(
            &oids, &payloads, spec, ScatterMode::Buffered, &mut scratch,
        );
        prop_assert_eq!(&buffered, &plain);
        // Reusing the same (now dirty) scratch must not change the result.
        let again = radix_cluster_oids_with_scratch(
            &oids, &payloads, spec, ScatterMode::Buffered, &mut scratch,
        );
        prop_assert_eq!(&again, &plain);
        // The hashed-key kernel obeys the same equivalence.
        let keys: Vec<u64> = oids.iter().map(|&o| o as u64).collect();
        let hashed_plain = radix_cluster(&keys, &payloads, spec);
        let hashed_buffered = radix_cluster_with_scratch(
            &keys, &payloads, spec, ScatterMode::Buffered, &mut ClusterScratch::new(),
        );
        prop_assert_eq!(&hashed_buffered, &hashed_plain);
    }

    /// Parallel Radix-Decluster inverts the clustering permutation exactly
    /// like the sequential kernel, for every window size and thread count.
    #[test]
    fn parallel_radix_decluster_inverts_clustering(
        n in 1usize..3_000,
        bits in 0u32..8,
        window_bytes in 4usize..1_000_000,
        threads in 1usize..9,
        seed in 0u64..u64::MAX,
    ) {
        use radix_decluster::exec::par_radix_decluster;
        let mut smaller: Vec<Oid> = (0..n as Oid).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            smaller.swap(i, j);
        }
        let result_positions: Vec<Oid> = (0..n as Oid).collect();
        let clustered = radix_cluster_oids(&smaller, &result_positions, RadixClusterSpec::single_pass(bits));
        let values: Vec<i64> = clustered.keys().iter().map(|&o| o as i64 * 3 + 1).collect();

        let sequential = radix_decluster(&values, clustered.payloads(), clustered.bounds(), window_bytes);
        let parallel = par_radix_decluster(
            &values,
            clustered.payloads(),
            clustered.bounds(),
            window_bytes,
            &ExecPolicy::with_threads(threads),
        );
        prop_assert_eq!(&parallel, &sequential);
        let expected: Vec<i64> = smaller.iter().map(|&o| o as i64 * 3 + 1).collect();
        prop_assert_eq!(parallel, expected);
    }

    /// Radix-Sort really sorts, for any oid multiset.
    #[test]
    fn radix_sort_sorts_any_oid_column(
        oids in proptest::collection::vec(0u32..100_000, 0..3_000),
    ) {
        let payloads: Vec<u32> = (0..oids.len() as u32).collect();
        let domain = oids.iter().map(|&o| o as usize + 1).max().unwrap_or(0);
        let sorted = radix_sort_oids(&oids, &payloads, domain);
        prop_assert!(sorted.keys().windows(2).all(|w| w[0] <= w[1]));
        let mut expected = oids.clone();
        expected.sort_unstable();
        prop_assert_eq!(sorted.keys(), &expected[..]);
    }

    /// Radix-Decluster inverts the clustering permutation for every window
    /// size and clustering granularity.
    #[test]
    fn radix_decluster_inverts_clustering(
        n in 1usize..3_000,
        bits in 0u32..8,
        window_bytes in 4usize..1_000_000,
        seed in 0u64..u64::MAX,
    ) {
        // A pseudo-random permutation of smaller oids.
        let mut smaller: Vec<Oid> = (0..n as Oid).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            smaller.swap(i, j);
        }
        let result_positions: Vec<Oid> = (0..n as Oid).collect();
        let clustered = radix_cluster_oids(&smaller, &result_positions, RadixClusterSpec::single_pass(bits));
        let values: Vec<i64> = clustered.keys().iter().map(|&o| o as i64 * 3 + 1).collect();

        let out = radix_decluster(&values, clustered.payloads(), clustered.bounds(), window_bytes);

        // Expected: result row r holds the value derived from smaller[r].
        let expected: Vec<i64> = smaller.iter().map(|&o| o as i64 * 3 + 1).collect();
        prop_assert_eq!(out, expected);
    }

    /// Partitioned Hash-Join equals naive Hash-Join equals a set-based
    /// reference, for arbitrary key multisets.
    #[test]
    fn joins_agree_with_reference(
        larger in proptest::collection::vec(0u64..500, 0..400),
        smaller in proptest::collection::vec(0u64..500, 0..400),
        bits in 0u32..8,
        passes in 1u32..3,
    ) {
        let reference: HashSet<(Oid, Oid)> = larger
            .iter()
            .enumerate()
            .flat_map(|(l, &lk)| {
                smaller
                    .iter()
                    .enumerate()
                    .filter(move |(_, &sk)| sk == lk)
                    .map(move |(s, _)| (l as Oid, s as Oid))
            })
            .collect();
        let naive: HashSet<(Oid, Oid)> = hash_join(&larger, &smaller).iter().collect();
        let partitioned: HashSet<(Oid, Oid)> =
            partitioned_hash_join(&larger, &smaller, RadixClusterSpec::new(bits, passes))
                .iter()
                .collect();
        prop_assert_eq!(&naive, &reference);
        prop_assert_eq!(&partitioned, &reference);
    }

    /// Hashed radix clustering sends equal keys to equal clusters (the
    /// property Partitioned Hash-Join relies on).
    #[test]
    fn equal_keys_land_in_equal_clusters(
        keys in proptest::collection::vec(0u64..1_000, 1..1_000),
        bits in 1u32..8,
    ) {
        let payloads: Vec<u32> = (0..keys.len() as u32).collect();
        let clustered = radix_cluster(&keys, &payloads, RadixClusterSpec::single_pass(bits));
        // Map key -> cluster, ensure it is a function.
        let mut cluster_of = std::collections::HashMap::new();
        for j in 0..clustered.num_clusters() {
            for &k in clustered.cluster_keys(j) {
                if let Some(&prev) = cluster_of.get(&k) {
                    prop_assert_eq!(prev, j, "key {} in clusters {} and {}", k, prev, j);
                } else {
                    cluster_of.insert(k, j);
                }
            }
        }
    }

    /// The paged (Fig. 12) decluster stores every variable-size value
    /// retrievably and never splits a value across pages.
    #[test]
    fn paged_decluster_round_trips(
        n in 1usize..400,
        bits in 0u32..6,
        page_size in 128usize..2_048,
    ) {
        let strings: Vec<String> = (0..n).map(|i| format!("v{i}-{}", "y".repeat(i % 17))).collect();
        let smaller: Vec<Oid> = (0..n as Oid).map(|r| (r * 31 + 7) % n as Oid).collect();
        let positions: Vec<Oid> = (0..n as Oid).collect();
        let clustered = radix_cluster_oids(&smaller, &positions, RadixClusterSpec::single_pass(bits));
        let mut values = VarColumn::new();
        for &o in clustered.keys() {
            values.push_str(&strings[o as usize]);
        }
        let mut bm = BufferManager::new(page_size);
        let placed = radix_decluster_paged(&values, clustered.payloads(), clustered.bounds(), 256, &mut bm);
        for r in 0..n {
            let expected = &strings[smaller[r] as usize];
            prop_assert_eq!(placed.read(&bm, r, expected.len()), expected.as_bytes());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end: the planned DSM post-projection strategy matches the
    /// reference executor for arbitrary (small) workload shapes.
    #[test]
    fn dsm_post_projection_matches_reference(
        n in 16usize..800,
        pi in 1usize..4,
        seed in 0u64..1_000,
    ) {
        use radix_decluster::core::strategy::reference::{reference_rows, result_rows};
        use radix_decluster::workload::JoinWorkloadBuilder;

        let w = JoinWorkloadBuilder::equal(n, pi).seed(seed).build();
        let spec = QuerySpec::symmetric(pi);
        let params = CacheParams::tiny_for_tests();
        let out = DsmPostProjection::plan(&w.larger, &w.smaller, &params)
            .execute(&w.larger, &w.smaller, &spec, &params);
        prop_assert_eq!(result_rows(&out.result), reference_rows(&w.larger, &w.smaller, &spec));
    }
}
