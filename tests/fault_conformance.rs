//! Fault-injection conformance: every degradation path of the serving
//! stack is a **pure function of the scripted
//! [`FaultPlan`]** — worker panics poison exactly one query, infeasible
//! deadlines never run a chunk, cancellation at *any* chunk boundary
//! reclaims the admission grant, retries recover deterministically, and
//! two runs of the same script produce identical traces.  Throughout,
//! surviving queries stay byte-identical to their serial runs: degradation
//! changes *which* queries finish, never the bytes of those that do.

use proptest::prelude::*;
use radix_decluster::prelude::*;

/// Engine knobs shared by every scenario.  `plan_shares` is pinned so the
/// serial oracle (one slot) and the concurrent engines (two slots) choose
/// identical plans — the suite then compares pure scheduling and fault
/// handling, never plan drift.
fn config(budget_bytes: usize, observability: bool) -> ServeConfig {
    ServeConfig {
        params: CacheParams::tiny_for_tests(),
        global_budget: MemoryBudget::bytes(budget_bytes),
        max_concurrent: 2,
        threads_per_query: 1,
        cache_bytes: 1 << 20,
        fairness: FairnessPolicy::CostWeighted,
        plan_shares: Some(2),
        observability,
        profiled: false,
        ..ServeConfig::default()
    }
}

fn columns(result: &ResultRelation) -> Vec<Vec<i32>> {
    result
        .columns()
        .iter()
        .map(|c| c.as_slice().to_vec())
        .collect()
}

/// The serial oracle: the same request alone in a fresh one-slot engine.
fn serial_columns(
    w: &workload::JoinWorkload,
    spec: QuerySpec,
    budget_bytes: usize,
) -> Vec<Vec<i32>> {
    let mut cfg = config(budget_bytes, false);
    cfg.max_concurrent = 1;
    let mut session = Session::new(cfg);
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());
    let ticket = session.query(larger, smaller).project(spec).submit();
    while session.drive(64) > 0 {}
    match ticket.poll(&mut session) {
        QueryPoll::Done(q) => columns(&q.result),
        other => panic!("serial oracle must complete, got {other:?}"),
    }
}

#[test]
fn injected_worker_panic_poisons_exactly_one_query() {
    let w = JoinWorkloadBuilder::equal(1_500, 1).seed(41).build();
    let spec = QuerySpec::symmetric(1);
    let expected = serial_columns(&w, spec, 4 * 1024);

    let mut session = Session::new(config(4 * 1024, false));
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());
    // Submission ordinal 0 panics on worker 1 at its third chunk step;
    // ordinal 1 is untouched and runs concurrently with the failure.
    session.inject_faults(FaultPlan::new().panic_at(0, 2, 1));
    let victim = session.query(larger, smaller).project(spec).submit();
    let survivor = session.query(larger, smaller).project(spec).submit();
    while session.drive(64) > 0 {}

    match victim.poll(&mut session) {
        QueryPoll::Rejected(RdxError::WorkerPanicked { worker }) => assert_eq!(worker, 1),
        other => panic!("victim must report its panic, got {other:?}"),
    }
    // The terminal outcome is delivered to exactly one poll.
    assert!(matches!(
        victim.poll(&mut session),
        QueryPoll::Rejected(RdxError::UnknownTicket { .. })
    ));
    match survivor.poll(&mut session) {
        QueryPoll::Done(q) => assert_eq!(columns(&q.result), expected),
        other => panic!("survivor must finish clean, got {other:?}"),
    }
    let engine = session.engine_mut();
    assert_eq!(engine.stats().worker_panics, 1);
    assert_eq!(engine.committed_bytes(), 0, "panicked grant reclaimed");
}

#[test]
fn infeasible_deadline_never_runs_a_chunk() {
    let w = JoinWorkloadBuilder::equal(2_000, 1).seed(43).build();
    let spec = QuerySpec::symmetric(1);
    let mut session = Session::new(config(4 * 1024, false));
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());
    let doomed = session
        .query(larger, smaller)
        .project(spec)
        .deadline(1)
        .submit();
    while session.drive(64) > 0 {}
    match doomed.poll(&mut session) {
        QueryPoll::Rejected(RdxError::Deadline(DeadlineError::Infeasible {
            predicted_ns,
            deadline_ns,
        })) => {
            assert!(predicted_ns > deadline_ns);
            assert_eq!(deadline_ns, 1);
        }
        other => panic!("expected infeasible rejection, got {other:?}"),
    }
    let stats = session.engine_mut().stats();
    assert_eq!(stats.deadline_rejects, 1);
    assert_eq!(
        stats.chunks_dispatched, 0,
        "rejected at admission, not mid-run"
    );
}

#[test]
fn scripted_slowdown_exceeds_the_deadline_deterministically() {
    let w = JoinWorkloadBuilder::equal(1_500, 1).seed(47).build();
    let spec = QuerySpec::symmetric(1);
    let mut session = Session::new(config(2 * 1024, false));
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());
    // A second of real slack dwarfs actual wall time; only the scripted
    // 10¹² ns slowdown at chunk 1 can trip the deadline.
    session.inject_faults(FaultPlan::new().slow_at(0, 1, 1_000_000_000_000));
    let ticket = session
        .query(larger, smaller)
        .project(spec)
        .deadline(1_000_000_000)
        .submit();
    while session.drive(64) > 0 {}
    match ticket.poll(&mut session) {
        QueryPoll::Rejected(RdxError::Deadline(DeadlineError::Exceeded {
            consumed_ns,
            deadline_ns,
        })) => {
            assert!(consumed_ns > deadline_ns);
            assert_eq!(deadline_ns, 1_000_000_000);
        }
        other => panic!("expected deadline-exceeded teardown, got {other:?}"),
    }
    assert_eq!(session.engine_mut().committed_bytes(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cancellation at **every** chunk boundary: for each workload seed the
    /// inner loop cancels the victim after exactly `k` drive steps, for all
    /// `k` from "still queued" past "already finished".  At every boundary:
    /// the grant comes back (`Σ grants ≤ global` → committed bytes reach 0),
    /// the terminal outcome is observed exactly once, and the surviving
    /// query stays byte-identical to its serial run.
    #[test]
    fn cancellation_at_every_chunk_boundary(seed in 1u64..500) {
        let w = JoinWorkloadBuilder::equal(600, 1).seed(seed).build();
        let spec = QuerySpec::symmetric(1);
        let budget = 2 * 1024;
        let global = budget;
        let expected = serial_columns(&w, spec, budget);

        // How many drive steps a clean two-query mix takes end to end.
        let total_steps = {
            let mut session = Session::new(config(budget, false));
            let larger = session.register(w.larger.clone());
            let smaller = session.register(w.smaller.clone());
            session.query(larger, smaller).project(spec).submit();
            session.query(larger, smaller).project(spec).submit();
            let mut steps = 0usize;
            while session.drive(1) > 0 {
                steps += 1;
            }
            steps
        };
        prop_assert!(total_steps > 2);

        for k in 0..=total_steps {
            let mut session = Session::new(config(budget, false));
            let larger = session.register(w.larger.clone());
            let smaller = session.register(w.smaller.clone());
            let victim = session.query(larger, smaller).project(spec).submit();
            let survivor = session.query(larger, smaller).project(spec).submit();
            for _ in 0..k {
                session.drive(1);
                // The admission invariant holds at every boundary.
                prop_assert!(session.engine_mut().committed_bytes() <= global);
            }
            let was_live = victim.cancel(&mut session);
            if was_live {
                match victim.poll(&mut session) {
                    QueryPoll::Rejected(RdxError::Cancelled) => {}
                    other => panic!("k={k}: cancelled victim polled {other:?}"),
                }
            } else {
                // Cancel arrived after the finish line; the parked outcome
                // is still delivered exactly once.
                match victim.poll(&mut session) {
                    QueryPoll::Done(q) => prop_assert_eq!(&columns(&q.result), &expected),
                    other => panic!("k={k}: finished victim polled {other:?}"),
                }
            }
            // Exactly one terminal poll either way.
            let second_poll_is_unknown = matches!(
                victim.poll(&mut session),
                QueryPoll::Rejected(RdxError::UnknownTicket { .. })
            );
            prop_assert!(second_poll_is_unknown, "terminal outcome delivered twice");
            while session.drive(64) > 0 {}
            match survivor.poll(&mut session) {
                QueryPoll::Done(q) => prop_assert_eq!(&columns(&q.result), &expected),
                other => panic!("k={k}: survivor polled {other:?}"),
            }
            prop_assert_eq!(session.engine_mut().committed_bytes(), 0);
        }
    }
}

#[test]
fn retry_policy_recovers_scripted_grant_denials() {
    let w = JoinWorkloadBuilder::equal(800, 1).seed(53).build();
    let spec = QuerySpec::symmetric(1);
    let expected = serial_columns(&w, spec, 4 * 1024);
    let mut session = Session::new(config(4 * 1024, false));
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());

    // Two scripted denials against two allowed retries: the third attempt
    // is admitted and the result is indistinguishable from a clean run.
    session.inject_faults(FaultPlan::new().deny_grant(0).deny_grant(0));
    let ticket = session
        .query(larger, smaller)
        .project(spec)
        .retry(RetryPolicy::with_retries(2))
        .submit();
    while session.drive(64) > 0 {}
    match ticket.poll(&mut session) {
        QueryPoll::Done(q) => assert_eq!(columns(&q.result), expected),
        other => panic!("retried query must complete, got {other:?}"),
    }
    let stats = session.engine_mut().stats();
    assert_eq!(stats.retries, 2);
    assert_eq!(
        stats.budget_rejects, 0,
        "every denial was retried, not rejected"
    );
}

#[test]
fn retry_exhaustion_surfaces_the_underlying_error() {
    let w = JoinWorkloadBuilder::equal(800, 1).seed(59).build();
    let spec = QuerySpec::symmetric(1);
    let mut session = Session::new(config(4 * 1024, false));
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());
    // Two denials against one allowed retry: the second rejection is final.
    session.inject_faults(FaultPlan::new().deny_grant(0).deny_grant(0));
    let ticket = session
        .query(larger, smaller)
        .project(spec)
        .retry(RetryPolicy::with_retries(1))
        .submit();
    while session.drive(64) > 0 {}
    assert!(matches!(
        ticket.poll(&mut session),
        QueryPoll::Rejected(RdxError::Budget(BudgetError::ZeroBytes))
    ));
    let stats = session.engine_mut().stats();
    assert_eq!((stats.retries, stats.budget_rejects), (1, 1));
}

#[test]
fn panicked_query_with_retry_completes_byte_identical() {
    let w = JoinWorkloadBuilder::equal(1_200, 1).seed(61).build();
    let spec = QuerySpec::symmetric(1);
    let expected = serial_columns(&w, spec, 4 * 1024);
    let mut session = Session::new(config(4 * 1024, false));
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());
    session.inject_faults(FaultPlan::new().panic_at(0, 1, 0));
    let ticket = session
        .query(larger, smaller)
        .project(spec)
        .retry(RetryPolicy::with_retries(1))
        .submit();
    while session.drive(64) > 0 {}
    match ticket.poll(&mut session) {
        QueryPoll::Done(q) => assert_eq!(columns(&q.result), expected),
        other => panic!("re-run after panic must complete, got {other:?}"),
    }
    let stats = session.engine_mut().stats();
    assert_eq!((stats.worker_panics, stats.retries), (1, 1));
}

#[test]
fn scripted_cache_eviction_forces_a_rebuild() {
    let w = JoinWorkloadBuilder::equal(1_000, 1).seed(67).build();
    let spec = QuerySpec::symmetric(1);
    let mut session = Session::new(config(4 * 1024, false));
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());
    // Ordinal 0 warms the clustered-prefix cache; the scripted eviction
    // fires as ordinal 1 resolves, so it must rebuild; ordinal 2 then hits
    // what 1 re-inserted.
    session.inject_faults(FaultPlan::new().evict_cache(1));
    let hits = [false, false, true].map(|expect_hit| {
        let ticket = session.query(larger, smaller).project(spec).submit();
        while session.drive(64) > 0 {}
        match ticket.poll(&mut session) {
            QueryPoll::Done(q) => {
                assert_eq!(q.stats.cache_hit, expect_hit);
                columns(&q.result)
            }
            other => panic!("evicted-cache query must still complete, got {other:?}"),
        }
    });
    // Eviction changes where the prefix came from, never the bytes.
    assert_eq!(hits[0], hits[1]);
    assert_eq!(hits[1], hits[2]);
    assert!(session.cache_stats().evictions >= 1);
}

/// Maps a trace to its replayable shape: event labels (plus the cancel
/// reason), with wall-clock fields deliberately excluded.
fn trace_labels(snapshot: &TraceSnapshot) -> Vec<String> {
    snapshot
        .events
        .iter()
        .map(|e| match e.kind {
            EventKind::Cancel { reason } => format!("cancel:{reason}"),
            kind => kind.label().to_string(),
        })
        .collect()
}

#[test]
fn identical_fault_scripts_produce_identical_traces() {
    let w = JoinWorkloadBuilder::equal(900, 1).seed(71).build();
    let spec = QuerySpec::symmetric(1);
    let run = || {
        let mut session = Session::new(config(4 * 1024, true));
        let larger = session.register(w.larger.clone());
        let smaller = session.register(w.smaller.clone());
        // One of everything: a panic, a denial retried to success, a clean
        // survivor and a user cancellation.
        session.inject_faults(FaultPlan::new().panic_at(0, 1, 2).deny_grant(1));
        let panicked = session.query(larger, smaller).project(spec).submit();
        let retried = session
            .query(larger, smaller)
            .project(spec)
            .retry(RetryPolicy::with_retries(1))
            .submit();
        let cancelled = session.query(larger, smaller).project(spec).submit();
        session.drive(3);
        cancelled.cancel(&mut session);
        while session.drive(64) > 0 {}
        assert!(matches!(
            panicked.poll(&mut session),
            QueryPoll::Rejected(RdxError::WorkerPanicked { worker: 2 })
        ));
        assert!(matches!(retried.poll(&mut session), QueryPoll::Done(_)));
        assert!(matches!(
            cancelled.poll(&mut session),
            QueryPoll::Rejected(RdxError::Cancelled)
        ));
        trace_labels(&session.trace_snapshot().expect("observability on"))
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "degradation must be a pure function of the script"
    );
    assert!(first.iter().any(|l| l == "cancel:worker_panic"));
    assert!(first.iter().any(|l| l == "cancel:user"));
}
