//! Integration tests for the two extensions beyond the paper's minimal
//! pipeline: the cost-model-driven code planner and the sparse-selection
//! variant of DSM post-projection.  Both tie several crates together
//! (workload → core strategies → cost model → cache parameters).

use radix_decluster::cache::{CalibrationPoint, Calibrator};
use radix_decluster::core::strategy::reference::{reference_rows, result_rows};
use radix_decluster::core::strategy::{dsm_post_projection_sparse, plan_by_cost};
use radix_decluster::prelude::*;
use radix_decluster::workload::{JoinWorkloadBuilder, RelationBuilder, SparseWorkload};

#[test]
fn cost_planner_switches_codes_with_cardinality() {
    let params = CacheParams::paper_pentium4();
    let spec = QuerySpec::symmetric(4);

    let small = JoinWorkloadBuilder::equal(10_000, 4).seed(1).build();
    let small_plan = plan_by_cost(&small.larger, &small.smaller, &spec, &params);
    assert_eq!(
        small_plan.label(),
        "u/u",
        "cache-resident columns should stay unsorted"
    );

    let large = JoinWorkloadBuilder::equal(2_000_000, 4).seed(2).build();
    let large_plan = plan_by_cost(&large.larger, &large.smaller, &spec, &params);
    assert_eq!(
        large_plan.second_side,
        SecondSideCode::Decluster,
        "columns far beyond the cache should use the decluster pipeline"
    );
}

#[test]
fn cost_planner_output_is_executable_and_correct() {
    let params = CacheParams::tiny_for_tests();
    let spec = QuerySpec::symmetric(2);
    let w = JoinWorkloadBuilder::equal(4_000, 2).seed(3).build();
    let plan = plan_by_cost(&w.larger, &w.smaller, &spec, &params);
    let out = plan.execute(&w.larger, &w.smaller, &spec, &params);
    assert_eq!(
        result_rows(&out.result),
        reference_rows(&w.larger, &w.smaller, &spec)
    );
}

#[test]
fn planner_accepts_calibrated_host_parameters() {
    // A synthetic latency curve standing in for a Calibrator::run() on the
    // host (the real measurement is exercised in rdx-cache's own tests; here
    // we check the downstream plumbing into the planner).
    let curve = vec![
        CalibrationPoint {
            working_set: 16 * 1024,
            latency_ns: 1.2,
        },
        CalibrationPoint {
            working_set: 512 * 1024,
            latency_ns: 6.0,
        },
        CalibrationPoint {
            working_set: 8 * 1024 * 1024,
            latency_ns: 70.0,
        },
    ];
    let params = Calibrator::params_from_curve(&curve, 3.0e9);
    let w = JoinWorkloadBuilder::equal(50_000, 2).seed(4).build();
    let spec = QuerySpec::symmetric(2);
    let plan = plan_by_cost(&w.larger, &w.smaller, &spec, &params);
    let out = plan.execute(&w.larger, &w.smaller, &spec, &params);
    assert_eq!(out.result.cardinality(), w.expected_matches);
}

#[test]
fn sparse_post_projection_matches_dense_reference_at_all_selectivities() {
    let params = CacheParams::tiny_for_tests();
    let spec = QuerySpec::symmetric(2);
    for (selectivity, seed) in [(1.0, 10u64), (0.1, 11), (0.01, 12)] {
        let sparse = SparseWorkload::generate(1_500, selectivity, 2, seed);
        let larger = RelationBuilder::new(2_000)
            .columns(2)
            .seed(seed + 100)
            .key_domain(sparse.base.cardinality() as u64)
            .build_dsm();

        let out =
            dsm_post_projection_sparse(&larger, &sparse.base, &sparse.selection, &spec, &params);

        // Reference: materialise the selection as a dense relation.
        let keys = sparse.selection.project_key(sparse.base.key());
        let mut dense = radix_decluster::dsm::DsmRelation::from_key(keys);
        for a in 0..sparse.base.width() {
            dense.push_attr(sparse.base.attr(a).gather(sparse.selection.oids()));
        }
        assert_eq!(
            result_rows(&out.result),
            reference_rows(&larger, &dense, &spec),
            "selectivity {selectivity}"
        );
    }
}

#[test]
fn sparse_projection_cost_grows_as_selectivity_drops() {
    // Not a wall-clock assertion (too noisy for CI); we check the *simulated*
    // miss counts of the sparse gather, which is the mechanism behind the
    // Fig. 10 error bars.
    use radix_decluster::cache::{AddressSpace, MemorySystem};
    let params = CacheParams::tiny_for_tests();
    let selected = 10_000;
    let misses = |selectivity: f64| {
        let w = SparseWorkload::generate(selected, selectivity, 1, 21);
        let oids: Vec<Oid> = (0..selected as Oid).collect();
        let base_oids = w.selection.rebase(&oids);
        let mut mem = MemorySystem::new(&params);
        let mut space = AddressSpace::new();
        let col = space.alloc(w.base.cardinality(), 4);
        for &o in &base_oids {
            mem.read(col.addr(o as usize), 4);
        }
        mem.counts().l2_misses
    };
    assert!(misses(0.1) > misses(1.0));
    assert!(misses(0.01) >= misses(0.1));
}
