//! API-equivalence conformance: the `Session`/`Query` front door must be
//! **byte-identical** to every legacy entry point — the sequential
//! `DsmPostProjection::execute`, the parallel `par_dsm_post_projection`,
//! the streaming `ProjectionPipeline`, and the batch `RdxServer::run_batch`
//! — across the workspace `(N, h, ω, π, params)` grid and every
//! `u/s/c × u/d` code combination; and the non-blocking ticket loop
//! (`submit` / `Session::drive` / `Ticket::poll`) must reproduce
//! `run_batch` outputs **chunk for chunk**, while accepting new
//! submissions between chunk steps of in-flight queries (the async-front
//! enabler of the one-front-door redesign).

use radix_decluster::api::Session;
use radix_decluster::core::strategy::planner::streaming_bytes_per_row;
use radix_decluster::prelude::*;
use radix_decluster::workload::HitRate;

/// Raw column-by-column contents, for byte-identity comparisons.
fn raw_columns(result: &ResultRelation) -> Vec<Vec<i32>> {
    result
        .columns()
        .iter()
        .map(|c| c.as_slice().to_vec())
        .collect()
}

const CARDINALITIES: [usize; 4] = [1, 13, 100, 640];
const HIT_RATES: [f64; 3] = [1.0 / 3.0, 1.0, 3.0];
/// `(ω, π_larger, π_smaller)` triples.
const SHAPES: [(usize, usize, usize); 2] = [(1, 1, 1), (2, 2, 1)];

fn grid_params() -> [CacheParams; 2] {
    [CacheParams::tiny_for_tests(), CacheParams::paper_pentium4()]
}

fn all_codes() -> Vec<DsmPostProjection> {
    let mut codes = Vec::new();
    for first in [
        ProjectionCode::Unsorted,
        ProjectionCode::Sorted,
        ProjectionCode::PartialCluster,
    ] {
        for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
            codes.push(DsmPostProjection::with_codes(first, second));
        }
    }
    codes
}

#[test]
fn session_is_byte_identical_to_every_legacy_entry_point_across_the_grid() {
    let mut cells = 0usize;
    for n in CARDINALITIES {
        for h in HIT_RATES {
            for (omega, pi_l, pi_s) in SHAPES {
                let w = JoinWorkloadBuilder::equal(n, omega)
                    .hit_rate(HitRate(h))
                    .seed((n as u64) * 37 + (h * 10.0) as u64)
                    .build();
                let spec = QuerySpec {
                    project_larger: pi_l,
                    project_smaller: pi_s,
                };
                let data_bytes = (2 * n * omega * 4).max(64);
                for params in grid_params() {
                    let cell = format!("N={n} h={h} ω={omega} π=({pi_l},{pi_s})");
                    // plan_shares = 1 ⇒ the session plans at exactly
                    // `params`, like the legacy entry points.
                    let mut session = Session::with_params(params.clone());
                    let larger = session.register(w.larger.clone());
                    let smaller = session.register(w.smaller.clone());
                    for plan in all_codes() {
                        // Legacy front door #1: sequential executor.
                        let legacy = plan.execute(&w.larger, &w.smaller, &spec, &params);
                        let expected = raw_columns(&legacy.result);
                        // Legacy front door #2: parallel executor.
                        let par = par_dsm_post_projection(
                            &plan,
                            &w.larger,
                            &w.smaller,
                            &spec,
                            &params,
                            &ExecPolicy::with_threads(2),
                        );
                        assert_eq!(raw_columns(&par.result), expected, "{cell} par");
                        // Legacy front door #3: streaming pipeline at 1/16
                        // of the data.
                        let policy = ExecPolicy::with_threads(1)
                            .budget(MemoryBudget::fraction_of(data_bytes, 16));
                        let (piped, _) = ProjectionPipeline::new(plan)
                            .execute_materialized(&w.larger, &w.smaller, &spec, &params, &policy);
                        assert_eq!(raw_columns(&piped.result), expected, "{cell} pipeline");
                        // The front door: one-shot run with pinned codes.
                        let report = session
                            .query(larger, smaller)
                            .project(spec)
                            .codes(plan)
                            .run()
                            .expect("session run");
                        assert_eq!(
                            raw_columns(&report.result),
                            expected,
                            "{cell} session run {}",
                            plan.label()
                        );
                        assert_eq!(report.stats.plan, plan);
                        // The front door, chunked: stream under the same
                        // 1/16 budget (floored at one resident row — the
                        // session's checked planner rejects anything
                        // smaller by design), threads = 2.
                        let floored = (data_bytes / 16).max(streaming_bytes_per_row(&spec));
                        let mut sink = CountingSink::new(MaterializeSink::new());
                        let stats = session
                            .query(larger, smaller)
                            .project(spec)
                            .codes(plan)
                            .budget(MemoryBudget::bytes(floored))
                            .threads(2)
                            .stream(&mut sink)
                            .expect("session stream");
                        assert_eq!(
                            raw_columns(&sink.inner.into_result()),
                            expected,
                            "{cell} session stream {}",
                            plan.label()
                        );
                        assert_eq!(stats.rows, w.expected_matches, "{cell}");
                        cells += 1;
                    }
                }
            }
        }
    }
    assert_eq!(
        cells,
        CARDINALITIES.len() * HIT_RATES.len() * SHAPES.len() * 2 * 6,
        "grid shrank"
    );
}

/// Builds the request mix used by the batch-vs-ticket comparison: repeated
/// and distinct queries, a budget hint, pinned codes, and a threads hint.
fn mixed_requests(larger: RelationId, smaller: RelationId, spec: QuerySpec) -> Vec<ServerRequest> {
    vec![
        ServerRequest::new(larger, smaller, spec),
        ServerRequest::new(larger, smaller, QuerySpec::symmetric(1)),
        ServerRequest::new(larger, smaller, spec).with_budget_hint(MemoryBudget::bytes(256)),
        ServerRequest::new(larger, smaller, spec).with_codes(DsmPostProjection::with_codes(
            ProjectionCode::Unsorted,
            SecondSideCode::Decluster,
        )),
        ServerRequest::new(larger, smaller, spec).with_threads(2),
        ServerRequest::new(larger, smaller, spec),
    ]
}

#[test]
fn interleaved_tickets_reproduce_run_batch_chunk_for_chunk() {
    let w = JoinWorkloadBuilder::equal(1_800, 2).seed(71).build();
    let spec = QuerySpec::symmetric(2);
    let config = ServeConfig {
        params: CacheParams::tiny_for_tests(),
        global_budget: MemoryBudget::bytes(16 * 1024),
        max_concurrent: 3,
        threads_per_query: 1,
        cache_bytes: 1 << 20,
        fairness: FairnessPolicy::CostWeighted,
        plan_shares: None,
        observability: false,
        profiled: false,
        ..ServeConfig::default()
    };

    // Legacy batch shape.
    let mut server = RdxServer::new(config.clone());
    let requests = mixed_requests(
        server.register(w.larger.clone()),
        server.register(w.smaller.clone()),
        spec,
    );
    let report = server.run_batch(&requests);

    // Ticket shape: same config, same requests, driven incrementally with
    // polls between steps.
    let mut session = Session::new(config);
    let requests2 = mixed_requests(
        session.register(w.larger.clone()),
        session.register(w.smaller.clone()),
        spec,
    );
    let tickets: Vec<Ticket> = requests2
        .iter()
        .map(|r| {
            session
                .query(r.larger, r.smaller)
                .project(r.spec)
                .pipe_hints(r)
                .submit()
        })
        .collect();
    let mut reports: Vec<Option<radix_decluster::serve::QueryResult>> =
        (0..tickets.len()).map(|_| None).collect();
    // Drive one chunk-step at a time, polling every still-open ticket in
    // between — the access pattern of an async front.
    loop {
        let ran = session.drive(1);
        for (i, t) in tickets.iter().enumerate() {
            if reports[i].is_some() {
                continue;
            }
            match t.poll(&mut session) {
                QueryPoll::Done(r) => reports[i] = Some(r),
                QueryPoll::Queued | QueryPoll::Chunk(_) => {}
                QueryPoll::Rejected(e) => panic!("query {i} rejected: {e}"),
            }
        }
        if ran == 0 {
            break;
        }
    }

    // Chunk-for-chunk equivalence with the batch path, per query.
    for (i, outcome) in report.outcomes.iter().enumerate() {
        let batch = outcome.outcome.as_ref().expect("batch query served");
        let ticket = reports[i].take().expect("ticket query served");
        assert_eq!(
            raw_columns(&batch.result),
            raw_columns(&ticket.result),
            "query {i} bytes"
        );
        assert_eq!(batch.stats.chunks, ticket.stats.chunks, "query {i} chunks");
        assert_eq!(batch.stats.rows, ticket.stats.rows, "query {i} rows");
        assert_eq!(batch.stats.plan, ticket.stats.plan, "query {i} plan");
        assert_eq!(
            batch.stats.share_bytes, ticket.stats.share_bytes,
            "query {i} share"
        );
    }
}

/// Forward the optional hints of a [`ServerRequest`] onto a [`Query`] —
/// test-local sugar so the ticket path reuses the batch path's requests.
trait PipeHints<'s> {
    fn pipe_hints(self, request: &ServerRequest) -> Query<'s>;
}

impl<'s> PipeHints<'s> for Query<'s> {
    fn pipe_hints(self, request: &ServerRequest) -> Query<'s> {
        let mut q = self;
        if let Some(b) = request.budget_hint {
            q = q.budget(b);
        }
        if let Some(t) = request.threads_hint {
            q = q.threads(t);
        }
        if let Some(c) = request.codes {
            q = q.codes(c);
        }
        q
    }
}

#[test]
fn a_submission_lands_between_chunk_steps_of_an_in_flight_query() {
    let w = JoinWorkloadBuilder::equal(3_000, 1).seed(73).build();
    let mut session = Session::new(ServeConfig {
        params: CacheParams::tiny_for_tests(),
        global_budget: MemoryBudget::bytes(4 * 1024),
        max_concurrent: 4,
        threads_per_query: 1,
        cache_bytes: 0, // cold: B must redo the prefix, still byte-identical
        fairness: FairnessPolicy::RoundRobin,
        plan_shares: Some(1),
        observability: false,
        profiled: false,
        ..ServeConfig::default()
    });
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());

    let a = session.query(larger, smaller).submit();
    assert_eq!(session.drive(4), 4);
    let progress_before = match a.poll(&mut session) {
        QueryPoll::Chunk(p) => p,
        other => panic!("A should be mid-flight, got {other:?}"),
    };
    assert!(progress_before.chunks >= 1);

    // New work arrives while A is in flight; it is admitted alongside A
    // rather than waiting for A to finish.
    let b = session.query(larger, smaller).submit();
    session.drive(2);
    assert!(matches!(b.poll(&mut session), QueryPoll::Chunk(_)));
    assert!(
        matches!(a.poll(&mut session), QueryPoll::Chunk(p) if p.chunks > progress_before.chunks),
        "A kept progressing after B joined"
    );
    assert_eq!(session.in_flight(), 2);

    while session.drive(64) > 0 {}
    let (ra, rb) = match (a.poll(&mut session), b.poll(&mut session)) {
        (QueryPoll::Done(ra), QueryPoll::Done(rb)) => (ra, rb),
        other => panic!("both must finish, got {other:?}"),
    };
    // Interleaving is invisible in the bytes: both equal the solo run.
    let solo = ra.stats.plan.execute(
        &w.larger,
        &w.smaller,
        &QuerySpec::symmetric(1),
        session.params(),
    );
    assert_eq!(raw_columns(&ra.result), raw_columns(&solo.result));
    assert_eq!(raw_columns(&rb.result), raw_columns(&solo.result));
    assert!(session.engine_mut().stats().peak_concurrency >= 2);
}
