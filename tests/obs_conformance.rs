//! Observability conformance: recording must be *invisible* in the bytes.
//!
//! The grid replays the same zipfian query mixes through the serving layer
//! with `ServeConfig::observability` off and on — across cardinalities,
//! projection widths, thread counts and global budgets — and checks every
//! query's output is byte-identical.  Companion tests pin the structural
//! guarantees the trace makes: every query's lifecycle is replayable in
//! order from one snapshot, the per-query `chunk_step` events sum to
//! exactly the scheduler's `chunks_dispatched`, and the engine-level
//! counters agree with the per-query reports they aggregate.

use radix_decluster::prelude::*;
use radix_decluster::serve::BatchReport;

/// A compact multi-tenant mix parameterised by the grid axes.
fn mix(rows: usize, width: usize) -> QueryMix {
    QueryMix::generate(&MixConfig {
        tenants: vec![(rows, width), (rows / 2, 1), (rows / 4, width)],
        queries: 9,
        zipf_exponent: 1.0,
        seed: 41,
        ..MixConfig::default()
    })
}

fn submit(server: &mut RdxServer, mix: &QueryMix) -> Vec<ServerRequest> {
    let ids: Vec<(RelationId, RelationId)> = mix
        .tenants
        .iter()
        .map(|w| {
            (
                server.register(w.larger.clone()),
                server.register(w.smaller.clone()),
            )
        })
        .collect();
    mix.queries
        .iter()
        .map(|q| {
            let (larger, smaller) = ids[q.tenant];
            ServerRequest::new(larger, smaller, QuerySpec::symmetric(q.project))
        })
        .collect()
}

fn result_columns(report: &BatchReport) -> Vec<Vec<Vec<i32>>> {
    report
        .outcomes
        .iter()
        .map(|o| {
            let q = o.outcome.as_ref().expect("query served");
            q.result
                .columns()
                .iter()
                .map(|c| c.as_slice().to_vec())
                .collect()
        })
        .collect()
}

fn config(budget: MemoryBudget, threads: usize, observability: bool) -> ServeConfig {
    ServeConfig {
        params: CacheParams::tiny_for_tests(),
        global_budget: budget,
        max_concurrent: 3,
        threads_per_query: threads,
        cache_bytes: 1 << 20,
        fairness: FairnessPolicy::CostWeighted,
        plan_shares: Some(3),
        observability,
        profiled: false,
        ..ServeConfig::default()
    }
}

/// The byte-identity grid: `(N, ω, threads, budget)` — recording on must
/// change nothing downstream of the sinks.
#[test]
fn observed_results_are_byte_identical_to_unobserved() {
    for &(rows, width) in &[(2_000usize, 2usize), (4_000, 1)] {
        let mix = mix(rows, width);
        for threads in [1usize, 2] {
            for budget_bytes in [32 * 1024usize, 128 * 1024] {
                let budget = MemoryBudget::bytes(budget_bytes);
                let mut plain = RdxServer::new(config(budget, threads, false));
                let requests = submit(&mut plain, &mix);
                let expected = result_columns(&plain.run_batch(&requests));

                let mut observed = RdxServer::new(config(budget, threads, true));
                let requests = submit(&mut observed, &mix);
                let report = observed.run_batch(&requests);
                assert_eq!(
                    result_columns(&report),
                    expected,
                    "rows {rows} width {width} threads {threads} budget {budget_bytes}"
                );
            }
        }
    }
}

/// Σ per-query `chunk_step` events == the scheduler's `chunks_dispatched`,
/// and each query's own event count matches the chunks its report claims —
/// nothing double-counted, nothing dropped (under a sufficient ring).
#[test]
fn chunk_step_events_sum_to_scheduler_steps() {
    let w = JoinWorkloadBuilder::equal(3_000, 2).seed(47).build();
    let mut session = Session::new(ServeConfig {
        params: CacheParams::tiny_for_tests(),
        global_budget: MemoryBudget::bytes(24 * 1024),
        plan_shares: Some(2),
        observability: true,
        ..ServeConfig::default()
    });
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());

    // Ticket-only workload: every chunk is stepped by the engine scheduler.
    let tickets: Vec<Ticket> = (0..4)
        .map(|_| {
            session
                .query(larger, smaller)
                .project(QuerySpec::symmetric(2))
                .submit()
        })
        .collect();
    while session.drive(64) > 0 {}

    let mut total_chunks = 0u64;
    let trace = session.trace_snapshot().expect("observability on");
    assert_eq!(trace.dropped, 0, "default ring must hold this workload");
    for ticket in &tickets {
        let report = match ticket.poll(&mut session) {
            QueryPoll::Done(report) => report,
            other => panic!("expected Done, got {other:?}"),
        };
        let life = trace.events_for(QueryId(report.stats.query_id));
        let steps = life
            .iter()
            .filter(|e| e.kind.label() == "chunk_step")
            .count();
        assert_eq!(steps, report.stats.chunks, "per-query chunk accounting");
        total_chunks += steps as u64;
    }

    let stats = session.engine_mut().stats();
    assert_eq!(total_chunks, stats.chunks_dispatched);
    let metrics = session.metrics().expect("observability on");
    assert_eq!(
        metrics.counter("engine.chunks_dispatched"),
        Some(stats.chunks_dispatched)
    );
    let h = metrics.histogram("pipeline.chunk_ns").expect("recorded");
    assert_eq!(h.count, total_chunks);
}

/// Each query's events replay in lifecycle order, and rejected queries get
/// a `reject` terminal instead of ever being admitted.
#[test]
fn trace_replays_each_lifecycle_in_order() {
    let w = JoinWorkloadBuilder::equal(1_200, 1).seed(53).build();
    let mut session = Session::new(ServeConfig {
        params: CacheParams::tiny_for_tests(),
        observability: true,
        ..ServeConfig::default()
    });
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());

    let ok = session.query(larger, smaller).submit();
    // A below-one-row budget is a typed rejection — traced, never admitted.
    let bad = session
        .query(larger, smaller)
        .budget(MemoryBudget::bytes(2))
        .submit();
    while session.drive(64) > 0 {}

    let done = match ok.poll(&mut session) {
        QueryPoll::Done(report) => report,
        other => panic!("expected Done, got {other:?}"),
    };
    assert!(matches!(bad.poll(&mut session), QueryPoll::Rejected(_)));

    let trace = session.trace_snapshot().expect("observability on");
    let labels: Vec<&str> = trace
        .events_for(QueryId(done.stats.query_id))
        .iter()
        .map(|e| e.kind.label())
        .collect();
    assert_eq!(labels.first(), Some(&"submit"));
    assert_eq!(labels.get(1), Some(&"admit"));
    assert_eq!(labels.get(2), Some(&"cache_lookup"));
    assert_eq!(labels.last(), Some(&"done"));
    assert!(labels[3..labels.len() - 1]
        .iter()
        .all(|l| *l == "chunk_step"));

    // The rejected query: exactly submit → reject, nothing in between.
    let rejected: Vec<&TraceEvent> = trace
        .events
        .iter()
        .filter(|e| e.query.raw() != done.stats.query_id)
        .collect();
    let labels: Vec<&str> = rejected.iter().map(|e| e.kind.label()).collect();
    assert_eq!(labels, ["submit", "reject"]);

    let stats = session.engine_mut().stats();
    assert_eq!(stats.admissions, 1);
    assert_eq!(stats.rejections, 1);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 0);
}

/// Adaptive re-splits change the chunk count mid-flight — the trace must
/// still account for every chunk: Σ `chunk_step` events equals the chunks
/// the report claims, each `replan` event sits in lifecycle order (after
/// the chunk that triggered it, before `done`), and the replan counters
/// agree across the pipeline, the engine and the trace.
#[test]
fn adaptive_replans_keep_chunk_accounting_and_lifecycle_order() {
    let w = JoinWorkloadBuilder::equal(3_000, 2).seed(59).build();
    let mut session = Session::new(ServeConfig {
        params: CacheParams::tiny_for_tests(),
        global_budget: MemoryBudget::bytes(2 * 1024),
        observability: true,
        ..ServeConfig::default()
    });
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());
    let request = ServerRequest::new(larger, smaller, QuerySpec::symmetric(2))
        .with_adaptive(AdaptivePolicy::default());

    let engine = session.engine_mut();
    let mut rq = engine.resolve_direct(&request).expect("resolves");
    // Swap the wall-clock source for a deterministic 3x-slow script, so the
    // re-split is forced regardless of machine speed.
    rq.replace_feedback(Box::new(ScriptedFeedback::constant(3_000)));
    let mut sink = MaterializeSink::new();
    rq.run_to_completion(&mut sink);
    let report = engine.retire(rq);
    assert!(
        report.adaptive_replans >= 1,
        "scripted slow stream must fire"
    );

    let trace = session.trace_snapshot().expect("observability on");
    let labels: Vec<&str> = trace
        .events_for(QueryId(report.query_id))
        .iter()
        .map(|e| e.kind.label())
        .collect();

    // Full direct-run lifecycle, with the re-splits inside the chunk loop.
    assert_eq!(labels.first(), Some(&"submit"));
    assert_eq!(labels.get(1), Some(&"admit"));
    assert_eq!(labels.get(2), Some(&"cache_lookup"));
    assert_eq!(labels.last(), Some(&"done"));
    let inner = &labels[3..labels.len() - 1];
    assert!(inner.iter().all(|l| *l == "chunk_step" || *l == "replan"));
    for (i, label) in inner.iter().enumerate() {
        if *label == "replan" {
            assert!(i > 0, "a replan needs an observed chunk before it");
            assert_eq!(
                inner[i - 1],
                "chunk_step",
                "each replan trails the chunk that triggered it"
            );
        }
    }

    // Chunk accounting survives the mid-flight chunk-count changes.
    let steps = inner.iter().filter(|l| **l == "chunk_step").count();
    assert_eq!(steps, report.chunks, "every dispatched chunk is traced");
    let replans = inner.iter().filter(|l| **l == "replan").count();
    assert_eq!(replans, report.adaptive_replans);

    // Pipeline-, engine- and trace-level replan counts all agree.
    let metrics = session.metrics().expect("observability on");
    assert_eq!(
        metrics.counter("pipeline.adaptive_replans"),
        Some(replans as u64)
    );
    assert_eq!(
        metrics.counter("engine.adaptive_replans"),
        Some(replans as u64)
    );
    let delta = metrics
        .histogram("pipeline.resplit_chunk_delta")
        .expect("recorded");
    assert_eq!(delta.count, replans as u64);
}

/// Cache-truth profiling is a pure observer: a profiled session (engine-wide
/// `profiled` plus a miss-count-adaptive query) returns bytes identical to an
/// unprofiled one on both second-side codes, two profiled runs charge
/// identical simulated miss counts, and an unprofiled run charges none.
#[test]
fn profiled_execution_is_byte_identical_and_deterministic() {
    let w = JoinWorkloadBuilder::equal(2_000, 2).seed(61).build();
    let spec = QuerySpec::symmetric(2);
    for second in [SecondSideCode::Unsorted, SecondSideCode::Decluster] {
        let codes = DsmPostProjection::with_codes(ProjectionCode::PartialCluster, second);
        let run = |profiled: bool| {
            let mut session = Session::new(ServeConfig {
                params: CacheParams::tiny_for_tests(),
                global_budget: MemoryBudget::bytes(4 * 1024),
                plan_shares: Some(1),
                observability: true,
                profiled,
                ..ServeConfig::default()
            });
            let larger = session.register(w.larger.clone());
            let smaller = session.register(w.smaller.clone());
            let out = session
                .query(larger, smaller)
                .project(spec)
                .codes(codes)
                .adaptive(AdaptivePolicy::default())
                .run()
                .expect("serves");
            let cols: Vec<Vec<i32>> = out
                .result
                .columns()
                .iter()
                .map(|c| c.as_slice().to_vec())
                .collect();
            let metrics = session.metrics().expect("observability on");
            let counts = [
                "profile.accesses",
                "profile.l1_misses",
                "profile.l2_misses",
                "profile.tlb_misses",
                "profile.stall_cycles",
            ]
            .map(|m| metrics.counter(m));
            (cols, counts)
        };
        let (plain, unprofiled_counts) = run(false);
        assert!(
            unprofiled_counts.iter().all(|c| c.is_none()),
            "unprofiled run must charge nothing ({second:?})"
        );
        let (a, counts_a) = run(true);
        let (b, counts_b) = run(true);
        assert_eq!(a, plain, "profiled bytes drifted ({second:?})");
        assert_eq!(b, plain, "second profiled run drifted ({second:?})");
        assert!(counts_a[0].unwrap() > 0, "no accesses charged ({second:?})");
        assert!(
            counts_a[1].unwrap() > 0,
            "no L1 misses charged ({second:?})"
        );
        assert_eq!(
            counts_a, counts_b,
            "simulated counts must be deterministic ({second:?})"
        );
    }
}

/// The per-request `profiled` flag works through the `Query` front door —
/// one profiled query in an otherwise unprofiled session records
/// `ChunkProfile` trace events adjacent to its chunk steps, while its
/// unprofiled neighbour records none.
#[test]
fn per_query_profiled_flag_traces_only_that_query() {
    let w = JoinWorkloadBuilder::equal(1_500, 1).seed(67).build();
    let mut session = Session::new(ServeConfig {
        params: CacheParams::tiny_for_tests(),
        global_budget: MemoryBudget::bytes(4 * 1024),
        plan_shares: Some(1),
        observability: true,
        ..ServeConfig::default()
    });
    let larger = session.register(w.larger.clone());
    let smaller = session.register(w.smaller.clone());
    let profiled = session
        .query(larger, smaller)
        .profiled()
        .run()
        .expect("serves");
    let plain = session.query(larger, smaller).run().expect("serves");

    let trace = session.trace_snapshot().expect("observability on");
    let profile_events = |query_id: u64| {
        trace
            .events_for(QueryId(query_id))
            .iter()
            .filter(|e| e.kind.label() == "chunk_profile")
            .count()
    };
    assert_eq!(
        profile_events(profiled.stats.query_id),
        profiled.stats.chunks,
        "one ChunkProfile per chunk"
    );
    assert_eq!(profile_events(plain.stats.query_id), 0);
    assert_eq!(
        raw(&profiled.result),
        raw(&plain.result),
        "profiling changed bytes"
    );
}

fn raw(result: &ResultRelation) -> Vec<Vec<i32>> {
    result
        .columns()
        .iter()
        .map(|c| c.as_slice().to_vec())
        .collect()
}

/// The cumulative engine counters aggregate what the per-query reports say
/// — warm reruns turn misses into hits, and both views agree.
#[test]
fn engine_counters_agree_with_per_query_reports() {
    let mix = mix(2_000, 2);
    let mut server = RdxServer::new(config(MemoryBudget::bytes(48 * 1024), 1, true));
    let requests = submit(&mut server, &mix);
    let cold = server.run_batch(&requests);
    let warm = server.run_batch(&requests);

    let hits = |r: &BatchReport| {
        r.outcomes
            .iter()
            .filter(|o| o.outcome.as_ref().unwrap().stats.cache_hit)
            .count() as u64
    };
    assert_eq!(cold.stats.cache_hits + cold.stats.cache_misses, 9);
    assert_eq!(cold.stats.cache_hits, hits(&cold));
    assert_eq!(cold.stats.admissions, 9);
    assert_eq!(cold.stats.rejections, 0);
    // Second pass: every prepared prefix is already resident.
    assert_eq!(warm.stats.cache_hits, hits(&warm));
    assert_eq!(hits(&warm), 9);
}
