//! Cache-behavior regression tests: the (streaming) Radix-Decluster access
//! pattern, replayed through the `rdx-cache` simulator, must stay within the
//! Appendix-A cost-model prediction — so a cache-efficiency regression fails
//! CI instead of only showing up in benches.
//!
//! ## Slack factors (documented contract)
//!
//! The cost model is an *analytical upper envelope*: it charges every
//! (window × cluster) chunk start and never credits cross-chunk residency,
//! so at high chunk counts (chunk ≈ cache) it over-predicts heavily while
//! the simulator sees near-zero misses.  The assertions are therefore
//! one-sided — simulated misses must not *exceed* prediction × slack:
//!
//! * L2 misses: slack **2.5** (measured headroom on this grid: sim/pred
//!   ≤ 1.7);
//! * L1 misses: slack **3** (the model under-counts L1 re-touches of the
//!   cursor state; measured ≤ 2.2);
//! * TLB misses: slack **3** (measured ≤ 2.4).
//!
//! Tightening the kernels can only lower the simulated side; a regression
//! that pushes any miss class past the envelope fails here.

use radix_decluster::cache::{CacheParams, EventCounts, MemorySystem};
use radix_decluster::core::cluster::{radix_cluster_oids, RadixClusterSpec};
use radix_decluster::core::decluster::chunks::ChunkCursors;
use radix_decluster::core::decluster::traced::radix_decluster_traced;
use radix_decluster::cost::algorithms as cost;
use radix_decluster::dsm::Oid;

const L2_SLACK: f64 = 2.5;
const L1_SLACK: f64 = 3.0;
const TLB_SLACK: f64 = 3.0;

fn clustered_input(n: usize, bits: u32) -> (Vec<i32>, Vec<Oid>, Vec<usize>) {
    let smaller: Vec<Oid> = (0..n as Oid)
        .map(|r| (r.wrapping_mul(2_654_435_761)) % n as Oid)
        .collect();
    let positions: Vec<Oid> = (0..n as Oid).collect();
    let c = radix_cluster_oids(&smaller, &positions, RadixClusterSpec::single_pass(bits));
    let values: Vec<i32> = c.keys().iter().map(|&o| o as i32).collect();
    (values, c.payloads().to_vec(), c.bounds().to_vec())
}

/// Replays the *streaming* decluster — `chunks` chunk-local kernel runs over
/// [`ChunkCursors`] — through one continuous [`MemorySystem`], returning the
/// reassembled result and the summed event counts.
fn traced_streaming_decluster(
    values: &[i32],
    positions: &[Oid],
    bounds: &[usize],
    window_bytes: usize,
    chunks: usize,
    mem: &mut MemorySystem,
) -> (Vec<i32>, EventCounts) {
    let n = values.len();
    let chunk_rows = n.div_ceil(chunks.max(1)).max(1);
    let mut cursors = ChunkCursors::new(positions, bounds);
    let mut out = Vec::with_capacity(n);
    let mut acc = EventCounts::default();
    while !cursors.is_done() {
        let chunk = cursors.next_chunk(cursors.consumed() + chunk_rows);
        let local_values = chunk.gather(values);
        let local_positions = chunk.rebased_positions(positions);
        let (chunk_out, delta) = radix_decluster_traced(
            &local_values,
            &local_positions,
            &chunk.local_bounds(),
            window_bytes,
            mem,
        );
        out.extend(chunk_out);
        acc.accesses += delta.accesses;
        acc.l1_misses += delta.l1_misses;
        acc.l2_misses += delta.l2_misses;
        acc.tlb_misses += delta.tlb_misses;
    }
    (out, acc)
}

fn assert_within(kind: &str, simulated: u64, predicted: f64, slack: f64, ctx: &str) {
    assert!(
        (simulated as f64) <= predicted * slack,
        "{ctx}: simulated {kind} misses {simulated} exceed prediction {predicted:.0} × slack {slack}"
    );
}

#[test]
fn monolithic_decluster_misses_stay_within_the_model() {
    let params = CacheParams::tiny_for_tests();
    let n = 16_384; // 64 KB of i32 output on an 8 KB L2.
    for bits in [4u32, 6] {
        for window in [2_048usize, 4_096] {
            let (values, positions, bounds) = clustered_input(n, bits);
            let mut mem = MemorySystem::new(&params);
            let (_, sim) = radix_decluster_traced(&values, &positions, &bounds, window, &mut mem);
            let pred = cost::radix_decluster(n, 4, bits, window, &params);
            let ctx = format!("monolithic bits={bits} window={window}");
            assert!(sim.accesses > 0 && sim.l2_misses > 0, "{ctx}: trace empty");
            assert_within("L2", sim.l2_misses, pred.l2_misses(), L2_SLACK, &ctx);
            assert_within("L1", sim.l1_misses, pred.l1_misses(), L1_SLACK, &ctx);
            assert_within("TLB", sim.tlb_misses, pred.tlb_misses, TLB_SLACK, &ctx);
        }
    }
}

#[test]
fn streaming_decluster_misses_stay_within_the_model() {
    let params = CacheParams::tiny_for_tests();
    let n = 16_384;
    for bits in [4u32, 6] {
        for chunks in [8usize, 64] {
            let window = 2_048;
            let (values, positions, bounds) = clustered_input(n, bits);
            let mut mem = MemorySystem::new(&params);
            let (out, sim) =
                traced_streaming_decluster(&values, &positions, &bounds, window, chunks, &mut mem);
            // The traced streaming path is still the exact permutation.
            let mut expected = vec![0i32; n];
            for (i, &p) in positions.iter().enumerate() {
                expected[p as usize] = values[i];
            }
            assert_eq!(out, expected, "bits={bits} chunks={chunks}");
            let pred = cost::streaming_radix_decluster(n, 4, bits, window, chunks, &params);
            let ctx = format!("streaming bits={bits} chunks={chunks}");
            assert_within("L2", sim.l2_misses, pred.l2_misses(), L2_SLACK, &ctx);
            assert_within("L1", sim.l1_misses, pred.l1_misses(), L1_SLACK, &ctx);
            assert_within("TLB", sim.tlb_misses, pred.tlb_misses, TLB_SLACK, &ctx);
        }
    }
}

#[test]
fn streaming_never_costs_more_l2_misses_than_monolithic() {
    // The whole point of budget-sized chunks: chunk-locality may only *help*
    // the cache.  A streaming implementation that thrashes worse than the
    // monolithic kernel is a regression, caught here.
    let params = CacheParams::tiny_for_tests();
    let n = 16_384;
    for bits in [4u32, 6] {
        let (values, positions, bounds) = clustered_input(n, bits);
        let mut mem = MemorySystem::new(&params);
        let (_, mono) = radix_decluster_traced(&values, &positions, &bounds, 2_048, &mut mem);
        for chunks in [8usize, 64] {
            let mut mem = MemorySystem::new(&params);
            let (_, stream) =
                traced_streaming_decluster(&values, &positions, &bounds, 2_048, chunks, &mut mem);
            assert!(
                (stream.l2_misses as f64) <= (mono.l2_misses as f64) * 1.5,
                "bits={bits} chunks={chunks}: streaming L2 {} vs monolithic {}",
                stream.l2_misses,
                mono.l2_misses
            );
        }
    }
}
