//! Allocation-regression tests for the zero-allocation scatter engine.
//!
//! A counting global allocator wraps `System` and tallies every `alloc` /
//! `realloc` in the test binary.  The headline guarantee (the PR 4
//! acceptance gate): once a streaming [`PipelineRun`] has emitted its first
//! chunk on a single-threaded policy, **every further
//! [`PipelineRun::step`] performs zero heap allocations** — the chunk loop
//! runs entirely out of the run's [`ChunkScratch`] and the caller's sink.
//! Companion tests pin down the per-call allocation budget of the scratch
//! kernels themselves, so a regression that quietly reintroduces per-call
//! buffers fails loudly.

use radix_decluster::core::cluster::SWWC_SLOT_ELEMS;
use radix_decluster::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Counts allocations (and reallocations — a `realloc` is a new buffer as
/// far as steady-state reuse is concerned); frees are irrelevant here.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// The allocation counter is process-global, so concurrently running tests
/// would count each other's allocations into any measured window.  Every
/// test in this binary holds this lock for its whole body; a panicked test
/// must not wedge the rest, so poisoning is ignored.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` and returns how many allocations it performed.  Only meaningful
/// while [`serialized`] is held.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// A sink that verifies geometry but holds no memory: the steady-state
/// consumer of the zero-allocation gate (a materialising sink would
/// rightfully allocate for its own accumulation).
struct NullSink {
    rows: usize,
    chunks: usize,
}

impl RowChunkSink for NullSink {
    fn emit(&mut self, _first_row: usize, columns: &[Vec<i32>]) {
        self.rows += columns.first().map(|c| c.len()).unwrap_or(0);
        self.chunks += 1;
    }
}

#[test]
fn pipeline_step_allocates_nothing_in_steady_state() {
    let _guard = serialized();
    let w = JoinWorkloadBuilder::equal(6_000, 2).seed(77).build();
    let spec = QuerySpec::symmetric(2);
    let params = CacheParams::tiny_for_tests();
    let data_bytes = 2 * 6_000 * 2 * 4;
    // Single-threaded policy: multi-threaded chunks inherently allocate for
    // their scoped thread spawns.
    let policy = ExecPolicy::with_threads(1).budget(MemoryBudget::fraction_of(data_bytes, 32));
    let plan =
        DsmPostProjection::with_codes(ProjectionCode::PartialCluster, SecondSideCode::Decluster);
    let pipeline = ProjectionPipeline::new(plan);
    let prepared = Arc::new(pipeline.prepare(&w.larger, &w.smaller, &params, &policy));
    let mut run = DsmPipelineRun::over_dsm(
        prepared.clone(),
        &w.larger,
        &w.smaller,
        &spec,
        &params,
        &policy,
    );
    let mut sink = NullSink { rows: 0, chunks: 0 };

    // Warm-up: the first chunk grows the scratch to its high-water mark
    // (chunks after the first are never larger).
    assert!(run.step(&mut sink).is_some());

    // Steady state: zero heap allocations per chunk, across many chunks.
    let mut steady_chunks = 0;
    loop {
        let allocs = allocations_during(|| {
            let _ = run.step(&mut sink);
        });
        if run.is_done() {
            break;
        }
        steady_chunks += 1;
        assert_eq!(
            allocs, 0,
            "steady-state chunk {steady_chunks} allocated {allocs} times"
        );
    }
    assert!(
        steady_chunks >= 16,
        "budget should force many chunks, got {steady_chunks}"
    );
    assert_eq!(sink.rows, w.expected_matches);

    // The same prefix re-run on recycled scratch is warm from chunk one.
    let scratch = run.take_scratch();
    let mut second =
        DsmPipelineRun::over_dsm(prepared, &w.larger, &w.smaller, &spec, &params, &policy);
    second.attach_scratch(scratch);
    let mut sink2 = NullSink { rows: 0, chunks: 0 };
    let first_chunk_allocs = allocations_during(|| {
        second.step(&mut sink2);
        second.step(&mut sink2);
    });
    assert_eq!(
        first_chunk_allocs, 0,
        "recycled scratch must make even the first chunks allocation-free"
    );
}

#[test]
fn observed_pipeline_step_allocates_nothing_in_steady_state() {
    let _guard = serialized();
    let w = JoinWorkloadBuilder::equal(6_000, 2).seed(77).build();
    let spec = QuerySpec::symmetric(2);
    let params = CacheParams::tiny_for_tests();
    let data_bytes = 2 * 6_000 * 2 * 4;
    let policy = ExecPolicy::with_threads(1).budget(MemoryBudget::fraction_of(data_bytes, 32));
    let plan =
        DsmPostProjection::with_codes(ProjectionCode::PartialCluster, SecondSideCode::Decluster);
    let pipeline = ProjectionPipeline::new(plan);
    let prepared = Arc::new(pipeline.prepare(&w.larger, &w.smaller, &params, &policy));
    let mut run = DsmPipelineRun::over_dsm(
        prepared.clone(),
        &w.larger,
        &w.smaller,
        &spec,
        &params,
        &policy,
    );
    // Recording on: the handles (registry Arcs, trace ring) are resolved
    // and sized up-front by `attach_obs`, so the chunk loop itself records
    // through atomics and a pre-allocated ring only.
    let obs = Obs::enabled(ObsConfig::default());
    run.attach_obs(&obs, QueryId::next(), 1_000);
    let mut sink = NullSink { rows: 0, chunks: 0 };

    // Warm-up: first chunk grows scratch (and instantiates the histograms).
    assert!(run.step(&mut sink).is_some());

    let mut steady_chunks = 0;
    loop {
        let allocs = allocations_during(|| {
            let _ = run.step(&mut sink);
        });
        if run.is_done() {
            break;
        }
        steady_chunks += 1;
        assert_eq!(
            allocs, 0,
            "observed steady-state chunk {steady_chunks} allocated {allocs} times"
        );
    }
    assert!(
        steady_chunks >= 16,
        "budget should force many chunks, got {steady_chunks}"
    );
    assert_eq!(sink.rows, w.expected_matches);
    // Every steady chunk landed in the trace and both histograms.
    let trace = obs.trace_snapshot().expect("enabled");
    assert_eq!(trace.events.len(), sink.chunks);
    let metrics = obs.metrics_snapshot().expect("enabled");
    let h = metrics.histogram("pipeline.chunk_ns").expect("recorded");
    assert_eq!(h.count, sink.chunks as u64);
}

/// Runtime adaptation must not cost the zero-allocation guarantee: with a
/// policy armed and accurate feedback (every chunk observes exactly its
/// prediction), the controller holds on every chunk and the steady-state
/// loop stays allocation-free — the controller, feedback source and
/// prediction state are all pre-allocated by `attach_adaptive`.
#[test]
fn adaptive_hold_steps_allocate_nothing_in_steady_state() {
    let _guard = serialized();
    let w = JoinWorkloadBuilder::equal(6_000, 2).seed(77).build();
    let spec = QuerySpec::symmetric(2);
    let params = CacheParams::tiny_for_tests();
    let data_bytes = 2 * 6_000 * 2 * 4;
    let policy = ExecPolicy::with_threads(1).budget(MemoryBudget::fraction_of(data_bytes, 32));
    let plan =
        DsmPostProjection::with_codes(ProjectionCode::PartialCluster, SecondSideCode::Decluster);
    let pipeline = ProjectionPipeline::new(plan);
    let prepared = Arc::new(pipeline.prepare(&w.larger, &w.smaller, &params, &policy));
    let mut run = DsmPipelineRun::over_dsm(
        prepared.clone(),
        &w.larger,
        &w.smaller,
        &spec,
        &params,
        &policy,
    );
    run.attach_adaptive(
        AdaptivePolicy::default(),
        Box::new(ScriptedFeedback::constant(1_000)),
        &params,
    );
    let mut sink = NullSink { rows: 0, chunks: 0 };

    // Warm-up: the first chunk grows the scratch to its high-water mark.
    assert!(run.step(&mut sink).is_some());

    let mut steady_chunks = 0;
    loop {
        let allocs = allocations_during(|| {
            let _ = run.step(&mut sink);
        });
        if run.is_done() {
            break;
        }
        steady_chunks += 1;
        assert_eq!(
            allocs, 0,
            "adaptive hold chunk {steady_chunks} allocated {allocs} times"
        );
    }
    assert!(
        steady_chunks >= 16,
        "budget should force many chunks, got {steady_chunks}"
    );
    assert_eq!(sink.rows, w.expected_matches);
    assert_eq!(
        run.run_stats().adaptive_replans,
        0,
        "accurate feedback holds"
    );
}

/// A fired re-split may allocate in the re-split step itself (the planner
/// runs once) — but the chunks *after* it must return to zero allocations:
/// a slow re-split only shrinks the chunk working set, so the warmed
/// scratch never regrows.
#[test]
fn steps_after_a_resplit_return_to_zero_allocations() {
    let _guard = serialized();
    let w = JoinWorkloadBuilder::equal(6_000, 2).seed(77).build();
    let spec = QuerySpec::symmetric(2);
    let params = CacheParams::tiny_for_tests();
    let data_bytes = 2 * 6_000 * 2 * 4;
    let policy = ExecPolicy::with_threads(1).budget(MemoryBudget::fraction_of(data_bytes, 32));
    let plan =
        DsmPostProjection::with_codes(ProjectionCode::PartialCluster, SecondSideCode::Decluster);
    let pipeline = ProjectionPipeline::new(plan);
    let prepared = Arc::new(pipeline.prepare(&w.larger, &w.smaller, &params, &policy));
    let mut run = DsmPipelineRun::over_dsm(
        prepared.clone(),
        &w.larger,
        &w.smaller,
        &spec,
        &params,
        &policy,
    );
    // React instantly, once: accurate for three observations, then a 3x
    // shock — the single re-plan fires at a known chunk index.
    run.attach_adaptive(
        AdaptivePolicy::default()
            .alpha(1_000)
            .observations(1)
            .replans(1),
        Box::new(ScriptedFeedback::from_ratios(&[
            1_000, 1_000, 1_000, 3_000, 1_000,
        ])),
        &params,
    );
    let wide_chunk_rows = run.streaming().chunk_rows;
    let mut sink = NullSink { rows: 0, chunks: 0 };

    // Warm-up chunk 0, then two accurate steady chunks: still 0-alloc.
    assert!(run.step(&mut sink).is_some());
    for i in 1..3 {
        let allocs = allocations_during(|| {
            let _ = run.step(&mut sink);
        });
        assert_eq!(allocs, 0, "pre-resplit chunk {i} allocated {allocs} times");
    }

    // Chunk 3 observes the shock and fires the re-split — the one step
    // allowed to allocate (the planner's arithmetic, measured separately).
    let resplit_allocs = allocations_during(|| {
        let _ = run.step(&mut sink);
    });
    assert_eq!(run.run_stats().adaptive_replans, 1, "the shock must fire");
    assert!(
        run.streaming().chunk_rows < wide_chunk_rows,
        "a slow re-split must tighten chunks"
    );
    assert!(
        resplit_allocs <= 8,
        "the re-split step itself grew unexpectedly: {resplit_allocs} allocations"
    );

    // Every chunk after the re-split is allocation-free again: the
    // tightened chunks fit the already-warmed scratch.
    let mut steady_chunks = 0;
    loop {
        let allocs = allocations_during(|| {
            let _ = run.step(&mut sink);
        });
        if run.is_done() {
            break;
        }
        steady_chunks += 1;
        assert_eq!(
            allocs, 0,
            "post-resplit chunk {steady_chunks} allocated {allocs} times"
        );
    }
    assert!(
        steady_chunks >= 16,
        "the tightened tail should stream many chunks, got {steady_chunks}"
    );
    assert_eq!(sink.rows, w.expected_matches);
}

#[test]
fn cluster_with_scratch_allocates_only_the_output() {
    let _guard = serialized();
    let oids: Vec<Oid> = (0..50_000u32).rev().collect();
    let payloads: Vec<Oid> = (0..50_000).collect();
    let spec = RadixClusterSpec::partial(6, 2, 0);
    let mut scratch = ClusterScratch::new();
    for mode in [ScatterMode::Plain, ScatterMode::Buffered] {
        // Warm-up grows the arena (the buffered mode additionally owns its
        // staging buffers, so each mode warms its own working set).
        let _ = radix_cluster_oids_with_scratch(&oids, &payloads, spec, mode, &mut scratch);
        let mut out = None;
        let allocs = allocations_during(|| {
            out = Some(radix_cluster_oids_with_scratch(
                &oids,
                &payloads,
                spec,
                mode,
                &mut scratch,
            ));
        });
        // Exactly the owned output: keys + payloads + bounds (the seed
        // kernel allocated four full-size working buffers and two cursor
        // vectors per segment on top).
        assert!(
            allocs <= 3,
            "{mode:?}: {allocs} allocations for an owned-output call"
        );
        assert_eq!(out.unwrap().len(), 50_000);
    }
    // The borrowed-view entry point allocates nothing at all (its result
    // buffers are part of the arena, warmed by its own first run).
    let _ = scratch.cluster_oids_in_scratch(&oids, &payloads, spec, ScatterMode::Buffered);
    let view_allocs = allocations_during(|| {
        let view = scratch.cluster_oids_in_scratch(&oids, &payloads, spec, ScatterMode::Buffered);
        assert_eq!(view.len(), 50_000);
    });
    assert_eq!(view_allocs, 0, "in-scratch clustering must not allocate");
}

#[test]
fn decluster_into_allocates_nothing_after_warmup() {
    let _guard = serialized();
    let n = 20_000usize;
    let smaller: Vec<Oid> = (0..n as Oid).rev().collect();
    let positions: Vec<Oid> = (0..n as Oid).collect();
    let clustered = radix_decluster_inputs(&smaller, &positions);
    let (values, positions, bounds) = clustered;
    let mut scratch = DeclusterScratch::new();
    let mut out = vec![0i32; n];
    // Warm-up.
    radix_decluster_into(&values, &positions, &bounds, 4096, &mut scratch, &mut out);
    let allocs = allocations_during(|| {
        for _ in 0..5 {
            radix_decluster_into(&values, &positions, &bounds, 4096, &mut scratch, &mut out);
        }
    });
    assert_eq!(allocs, 0, "decluster_into must reuse its cursor scratch");
    let expected = radix_decluster(&values, &positions, &bounds, 4096);
    assert_eq!(out, expected);
}

/// Builds a valid (values, positions, bounds) decluster input from a
/// shuffled oid column, as the §3.2 pipeline does.
fn radix_decluster_inputs(smaller: &[Oid], positions: &[Oid]) -> (Vec<i32>, Vec<Oid>, Vec<usize>) {
    let clustered = radix_decluster_cluster(smaller, positions);
    let values: Vec<i32> = clustered.keys().iter().map(|&o| o as i32 * 3).collect();
    (
        values,
        clustered.payloads().to_vec(),
        clustered.bounds().to_vec(),
    )
}

fn radix_decluster_cluster(
    smaller: &[Oid],
    positions: &[Oid],
) -> radix_decluster::core::cluster::Clustered<Oid, Oid> {
    radix_decluster::core::cluster::radix_cluster_oids(
        smaller,
        positions,
        RadixClusterSpec::single_pass(5),
    )
}

#[test]
fn swwc_slot_constant_agrees_between_kernel_and_cost_model() {
    // `rdx-cost` cannot depend on `rdx-core` (the planner would create a
    // cycle), so the staging-slot size is mirrored; this pins the mirror.
    assert_eq!(
        SWWC_SLOT_ELEMS,
        radix_decluster::cost::algorithms::SWWC_SLOT_ELEMS
    );
}
