//! # radix_decluster
//!
//! Facade crate for the reproduction of *"Cache-Conscious Radix-Decluster
//! Projections"* (Manegold, Boncz, Nes, Kersten — CWI / VLDB 2004).
//!
//! The workspace is split into focused crates; this facade re-exports the
//! public surface so downstream users can depend on a single crate:
//!
//! * [`dsm`] — Decomposition Storage Model substrate: dense columns with
//!   implicit (void) object-ids, join indices, `mark()`, variable-size columns.
//! * [`nsm`] — N-ary Storage Model substrate: row-major relations, record
//!   projection, slotted pages and a small buffer manager (paper §5).
//! * [`cache`] — cache hierarchy + TLB simulator and calibrator, standing in
//!   for the paper's hardware performance counters.
//! * [`cost`] — the Appendix-A hierarchical-memory cost models.
//! * [`workload`] — generators for the evaluation workloads (cardinality N,
//!   width ω, join hit rate h, selectivity s).
//! * [`core`] — the paper's algorithms: Radix-Cluster, Radix-Decluster,
//!   Partitioned Hash-Join, positional joins, Jive-Join, and the end-to-end
//!   projection strategies compared in §4.
//! * [`exec`] — the morsel-driven parallel execution engine: work-stealing
//!   morsel scheduling over scoped threads, parallel Radix-Cluster /
//!   Radix-Decluster / Partitioned Hash-Join kernels, parallel end-to-end
//!   strategy executors (all byte-identical to their sequential
//!   counterparts), and the memory-budgeted **streaming projection
//!   pipeline** (`exec::pipeline`) that emits the result in chunks sized by
//!   a `core::budget::MemoryBudget` through a `RowChunkSink` — resumable
//!   chunk by chunk (`exec::PipelineRun`).
//! * [`serve`] — the cache-aware **multi-query serving layer**: a relation
//!   catalog, an admission controller splitting one global memory budget
//!   into per-query shares, a fair (stride) chunk scheduler interleaving
//!   concurrent queries at chunk boundaries, a byte-budgeted LRU cache
//!   of clustered join indexes for cross-query reuse — and the
//!   ticket-granular [`serve::QueryEngine`] underneath it all.
//! * [`api`] — **one front door**: the unified [`api::Session`] /
//!   [`api::Query`] surface with non-blocking submission tickets.  A
//!   `Session` owns the catalog, shared cache params, global budget,
//!   join-index cache and scratch pools; the fluent builder resolves
//!   through one planner entry to `run()` (one-shot materialise),
//!   `stream(sink)` (chunked) or `submit()` (a [`api::Ticket`] polled
//!   without blocking, pumped by [`api::Session::drive`]).  The per-crate
//!   entry points above remain as documented legacy wrappers.
//!   Requests may carry a **deadline** (checked against the cost model at
//!   admission, enforced at chunk boundaries), a **priority**, and a capped
//!   **retry policy**; tickets can be **cancelled** mid-flight, worker
//!   panics poison only their own query, and a scripted
//!   `core::fault::FaultPlan` drives every degradation path
//!   deterministically.
//! * [`net`] — the std-only **network serving layer**: a versioned,
//!   length-prefixed binary wire protocol (`net::wire`, a pure codec whose
//!   server frames mirror ticket statuses and carry typed `RdxError`s), a
//!   single-threaded non-blocking [`net::NetServer`] multiplexing TCP and
//!   unix-domain connections between [`serve::QueryEngine`] steps with
//!   per-connection backpressure, and a blocking [`net::NetClient`].
//!   Per-tenant [`serve::TenantQuota`]s (in-flight and resident-byte caps
//!   on top of the global budget) admit each connection's submissions
//!   under the tenant named in its `Hello`.
//! * [`obs`] — the zero-dependency **observability layer**: a lock-free
//!   metrics registry (counters, gauges, power-of-two latency histograms),
//!   a bounded ring of per-query trace events (submit → admit → cache
//!   lookup → chunk steps → done), and text / JSON / Prometheus
//!   exporters.  Enabled per session via `ServeConfig::observability`;
//!   disabled it costs one branch per record site and nothing else.
//!
//! ## Quickstart
//!
//! ```
//! use radix_decluster::prelude::*;
//!
//! // Two relations of equal size that join on `key`, two projection columns each.
//! let workload = workload::JoinWorkloadBuilder::equal(10_000, 2).seed(1).build();
//!
//! let mut session = Session::with_params(CacheParams::paper_pentium4());
//! let larger = session.register(workload.larger.clone());
//! let smaller = session.register(workload.smaller.clone());
//! let report = session
//!     .query(larger, smaller)
//!     .project(QuerySpec::symmetric(2))
//!     .run()
//!     .unwrap();
//! assert_eq!(report.result.num_columns(), 4);
//! assert_eq!(report.result.cardinality(), workload.expected_matches);
//! ```

pub use rdx_api as api;
pub use rdx_cache as cache;
pub use rdx_core as core;
pub use rdx_cost as cost;
pub use rdx_dsm as dsm;
pub use rdx_exec as exec;
pub use rdx_net as net;
pub use rdx_nsm as nsm;
pub use rdx_obs as obs;
pub use rdx_serve as serve;
pub use rdx_workload as workload;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use rdx_api::{ChunkProgress, Query, QueryPoll, Session, Ticket};
    pub use rdx_cache::{CacheParams, MemorySystem};
    pub use rdx_core::budget::{BudgetError, MemoryBudget};
    pub use rdx_core::cluster::{
        plan_cluster_passes, plan_partial_cluster, radix_cluster, radix_cluster_oids,
        radix_cluster_oids_with_scratch, radix_cluster_with_scratch, scatter_cursor_budget,
        ClusterScratch, RadixClusterSpec, ScatterMode, ScratchClustered,
    };
    pub use rdx_core::decluster::{
        radix_decluster, radix_decluster_into, radix_decluster_windows,
        radix_decluster_windows_with_scratch, DeclusterScratch,
    };
    pub use rdx_core::error::{DeadlineError, RdxError, Side, TenantQuotaKind};
    pub use rdx_core::fault::{FaultAction, FaultInjector, FaultPlan, RetryPolicy};
    pub use rdx_core::join::partitioned_hash_join;
    pub use rdx_core::strategy::{
        plan_streaming, plan_streaming_checked, resplit_budget, AdaptiveController,
        AdaptiveDecision, AdaptivePolicy, CountingSink, DsmPostProjection, FeedbackSource,
        MaterializeSink, MissCountFeedback, PagedSink, ProjectionCode, QuerySpec, RowChunkSink,
        ScriptedFeedback, SecondSideCode, SharedMissCounts, StreamingPlan, WallClockFeedback,
    };
    pub use rdx_dsm::{Column, DsmRelation, JoinIndex, Oid, ResultRelation};
    pub use rdx_exec::{
        par_dsm_post_projection, par_nsm_post_projection_decluster, par_partitioned_hash_join,
        par_radix_cluster, par_radix_cluster_oids, par_radix_cluster_oids_with_scratch,
        par_radix_cluster_with_scratch, par_radix_decluster, par_radix_decluster_into,
        ChunkScratch, DsmPipelineRun, ExecPolicy, ParClusterScratch, PipelineRun,
        PreparedProjection, ProjectionPipeline,
    };
    pub use rdx_net::{
        ClientError, Frame, NetClient, NetConfig, NetListener, NetServer, NetStats, NetStream,
        SubmitSpec, WireError, WireReport, WIRE_VERSION,
    };
    pub use rdx_nsm::NsmRelation;
    pub use rdx_obs::{
        EventKind, MetricsRegistry, MetricsSnapshot, MissCounts, Obs, ObsConfig, Phase, Profile,
        QueryId, TraceEvent, TraceSnapshot,
    };
    pub use rdx_serve::{
        BatchReport, BatchStats, CacheStats, Catalog, EngineStats, EngineStep, FairnessPolicy,
        QueryEngine, QueryOutcome, QueryResult, QueryStats, RdxServer, RelationId, ResolvedQuery,
        ServeConfig, ServeError, ServerRequest, TenantId, TenantQuota, TenantQuotas, TenantStats,
        TicketId, TicketStatus,
    };
    pub use rdx_workload::{
        self as workload, BudgetedWorkload, JoinWorkloadBuilder, MixConfig, QueryMix,
        RelationBuilder,
    };
}
